(* Tests for lib/store: codec round-trips (every generator family plus
   QCheck-random hierarchies), typed corruption errors, cache-key
   sensitivity, store lookup/gc semantics, and the parallel batch
   runner's determinism and corrupt-entry fallback. *)

open Rsg_geom
open Rsg_layout
open Rsg_store

(* ---- temp store directories ---------------------------------------- *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rsg-store-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* ---- one layout per generator family -------------------------------- *)

let pla_tt () =
  Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01"); ("11-", "11") ]

let families =
  [
    ( "multiplier",
      fun () ->
        (Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 ())
          .Rsg_mult.Layout_gen.whole );
    ("pla", fun () -> (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell);
    ( "rom",
      fun () ->
        (Rsg_pla.Rom.generate ~word_bits:4 [| 1; 9; 4; 13 |]).Rsg_pla.Rom.pla
          .Rsg_pla.Gen.cell );
    ("decoder", fun () -> (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell);
    ( "ram",
      fun () ->
        (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell );
  ]

let flat_equal (a : Flatten.flat) (b : Flatten.flat) =
  a.Flatten.flat_boxes = b.Flatten.flat_boxes
  && a.Flatten.flat_labels = b.Flatten.flat_labels
  && a.Flatten.flat_bbox = b.Flatten.flat_bbox

(* ---- codec round-trips ---------------------------------------------- *)

let test_roundtrip_families () =
  List.iter
    (fun (name, build) ->
      let cell = build () in
      let flat = Flatten.flatten cell in
      let data = Codec.encode ~flat ~label:name cell in
      let entry = Codec.decode data in
      Alcotest.(check string) (name ^ " label") name entry.Codec.e_label;
      Alcotest.(check string)
        (name ^ " cif identical")
        (Cif.to_string cell)
        (Cif.to_string entry.Codec.e_cell);
      (match Lazy.force entry.Codec.e_flat with
      | None -> Alcotest.fail (name ^ ": flat section lost")
      | Some f ->
        Alcotest.(check bool) (name ^ " flat identical") true (flat_equal flat f));
      (* decoded hierarchy re-flattens to the same geometry *)
      Alcotest.(check bool)
        (name ^ " reflatten identical")
        true
        (flat_equal flat (Flatten.flatten entry.Codec.e_cell));
      Alcotest.(check string)
        (name ^ " label peek")
        name (Codec.decode_label data))
    families

let test_roundtrip_no_flat () =
  let cell = (Rsg_pla.Gen.generate_decoder 2).Rsg_pla.Gen.cell in
  let entry = Codec.decode (Codec.encode ~label:"bare" cell) in
  Alcotest.(check bool)
    "no flat stored" true
    (Lazy.force entry.Codec.e_flat = None);
  Alcotest.(check string)
    "cif identical"
    (Cif.to_string cell)
    (Cif.to_string entry.Codec.e_cell)

(* A random hierarchy: a pool of cells where cell [i] may only
   instantiate cells [j < i] — acyclic by construction — with random
   boxes, labels and D4-oriented instance calls. *)
let gen_random_cell st =
  let open QCheck.Gen in
  let n_layers = List.length Layer.all in
  let coord st = int_range (-1000) 1000 st in
  let rand_box st =
    let x = coord st and y = coord st in
    let w = int_range 0 300 st and h = int_range 0 300 st in
    Box.make ~xmin:x ~ymin:y ~xmax:(x + w) ~ymax:(y + h)
  in
  let n_cells = int_range 1 8 st in
  let pool =
    Array.init n_cells (fun i -> Cell.create (Printf.sprintf "rc%d" i))
  in
  Array.iteri
    (fun i c ->
      let n_objs = int_range 1 12 st in
      for _ = 1 to n_objs do
        match int_range 0 2 st with
        | 0 ->
          Cell.add_box c
            (Layer.of_index_exn (int_range 0 (n_layers - 1) st))
            (rand_box st)
        | 1 ->
          Cell.add_label c
            (Printf.sprintf "l%d" (int_range 0 99 st))
            (Vec.make (coord st) (coord st))
        | _ ->
          if i = 0 then Cell.add_box c Layer.Metal (rand_box st)
          else begin
            let j = int_range 0 (i - 1) st in
            let orient = Orient.of_index (int_range 0 7 st) in
            ignore
              (Cell.add_instance c ~orient
                 ~at:(Vec.make (coord st) (coord st))
                 pool.(j))
          end
      done)
    pool;
  pool.(n_cells - 1)

let qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"random hierarchies round-trip"
       (QCheck.make gen_random_cell)
       (fun cell ->
         let flat = Flatten.flatten cell in
         let entry = Codec.decode (Codec.encode ~flat ~label:"rand" cell) in
         Cif.to_string cell = Cif.to_string entry.Codec.e_cell
         && (match Lazy.force entry.Codec.e_flat with
            | Some f -> flat_equal flat f
            | None -> false)
         && flat_equal flat (Flatten.flatten entry.Codec.e_cell)))

(* ---- corruption ------------------------------------------------------ *)

let test_corruption_detected () =
  let cell = (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell in
  let flat = Flatten.flatten cell in
  let data = Codec.encode ~flat ~label:"decoder 3" cell in
  let expect_error what s =
    match Codec.decode s with
    | _ -> Alcotest.fail (what ^ ": corruption not detected")
    | exception Codec.Error _ -> ()
  in
  (* truncation at a spread of prefixes *)
  List.iter
    (fun frac ->
      let len = String.length data * frac / 10 in
      expect_error
        (Printf.sprintf "truncated to %d/%d" len (String.length data))
        (String.sub data 0 len))
    [ 0; 1; 3; 5; 7; 9 ];
  (* single-byte flips across the whole file, header included *)
  let step = max 1 (String.length data / 97) in
  let i = ref 0 in
  while !i < String.length data do
    let b = Bytes.of_string data in
    Bytes.set b !i (Char.chr (Char.code (Bytes.get b !i) lxor 0x41));
    expect_error (Printf.sprintf "flip at byte %d" !i) (Bytes.to_string b);
    i := !i + step
  done

let test_error_kinds () =
  let cell = Cell.create "unit" in
  Cell.add_box cell Layer.Metal (Box.make ~xmin:0 ~ymin:0 ~xmax:4 ~ymax:4);
  let data = Codec.encode ~label:"unit" cell in
  (match Codec.decode ("XXXX" ^ String.sub data 4 (String.length data - 4)) with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Codec.Error Codec.Bad_magic -> ()
  | exception Codec.Error e ->
    Alcotest.failf "wanted Bad_magic, got %a" Codec.pp_error e);
  (let b = Bytes.of_string data in
   Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) lxor 0xff));
   match Codec.decode (Bytes.to_string b) with
   | _ -> Alcotest.fail "bad version accepted"
   | exception Codec.Error (Codec.Bad_version _) -> ()
   | exception Codec.Error e ->
     Alcotest.failf "wanted Bad_version, got %a" Codec.pp_error e);
  (* flip one payload byte: length still right, checksum must catch it *)
  let b = Bytes.of_string data in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
  match Codec.decode (Bytes.to_string b) with
  | _ -> Alcotest.fail "payload flip accepted"
  | exception Codec.Error (Codec.Checksum_mismatch _) -> ()
  | exception Codec.Error e ->
    Alcotest.failf "wanted Checksum_mismatch, got %a" Codec.pp_error e

(* ---- cache keys ------------------------------------------------------ *)

let test_key_sensitivity () =
  let base = Store.key ~deck:"deck" ~scale:"1" ~design:"design" ~params:"p" () in
  let same = Store.key ~deck:"deck" ~scale:"1" ~design:"design" ~params:"p" () in
  Alcotest.(check string) "stable" (Store.key_hex base) (Store.key_hex same);
  List.iter
    (fun (what, k) ->
      Alcotest.(check bool)
        (what ^ " changes key")
        false
        (Store.key_hex k = Store.key_hex base))
    [
      ("design", Store.key ~deck:"deck" ~scale:"1" ~design:"design2" ~params:"p" ());
      ("params", Store.key ~deck:"deck" ~scale:"1" ~design:"design" ~params:"q" ());
      ("deck", Store.key ~deck:"deck2" ~scale:"1" ~design:"design" ~params:"p" ());
      ("scale", Store.key ~deck:"deck" ~scale:"2" ~design:"design" ~params:"p" ());
    ];
  (* components must not concatenate ambiguously *)
  let a = Store.key ~design:"ab" ~params:"c" ()
  and b = Store.key ~design:"a" ~params:"bc" () in
  Alcotest.(check bool) "no component bleed" false
    (Store.key_hex a = Store.key_hex b)

(* ---- store ----------------------------------------------------------- *)

let test_store_lookup () =
  let st = Store.open_ (temp_dir ()) in
  let cell = (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell in
  let flat = Flatten.flatten cell in
  let k = Store.key ~design:"decoder" ~params:"n=3" () in
  (match Store.find st k with
  | Store.Miss -> ()
  | _ -> Alcotest.fail "expected Miss before save");
  Store.save st k ~label:"decoder 3" ~flat cell;
  (match Store.find st k with
  | Store.Hit e ->
    Alcotest.(check string) "hit label" "decoder 3" e.Codec.e_label;
    Alcotest.(check string)
      "hit cif" (Cif.to_string cell)
      (Cif.to_string e.Codec.e_cell)
  | _ -> Alcotest.fail "expected Hit after save");
  (* corrupt the file on disk: find must report Corrupt and remove it *)
  let path = Store.path_of st k in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.set b (Bytes.length b - 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b - 2)) lxor 0x10));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Bytes.to_string b));
  (match Store.find st k with
  | Store.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt after byte flip");
  (match Store.find st k with
  | Store.Miss -> ()
  | _ -> Alcotest.fail "corrupt entry should have been removed");
  ignore (Store.clear st)

let test_store_stats_gc () =
  let st = Store.open_ (temp_dir ()) in
  let cell = Cell.create "c" in
  Cell.add_box cell Layer.Poly (Box.make ~xmin:0 ~ymin:0 ~xmax:2 ~ymax:2);
  let keys =
    List.map
      (fun i ->
        let k = Store.key ~design:"d" ~params:(string_of_int i) () in
        Store.save st k ~label:(Printf.sprintf "entry %d" i) cell;
        k)
      [ 0; 1; 2; 3 ]
  in
  let s = Store.stats st in
  Alcotest.(check int) "entries" 4 s.Store.st_entries;
  Alcotest.(check bool) "bytes > 0" true (s.Store.st_bytes > 0);
  let listed = List.map (fun e -> e.Store.es_key) s.Store.st_list in
  Alcotest.(check (list string))
    "sorted deterministic" (List.sort String.compare listed) listed;
  Alcotest.(check int) "listed all" 4 (List.length listed);
  (* gc by size down to roughly half must remove something but not all *)
  let per = s.Store.st_bytes / 4 in
  let removed = Store.gc ~max_bytes:(per * 2) st in
  Alcotest.(check bool) "gc removed some" true (removed >= 1 && removed < 4);
  let s2 = Store.stats st in
  Alcotest.(check bool) "gc under budget" true (s2.Store.st_bytes <= per * 2);
  (* gc by age: everything is fresh, so a 1-hour horizon removes nothing *)
  Alcotest.(check int) "age gc keeps fresh" 0 (Store.gc ~max_age:3600.0 st);
  let n = Store.clear st in
  Alcotest.(check int) "clear removes rest" s2.Store.st_entries n;
  Alcotest.(check int) "empty after clear" 0 (Store.stats st).Store.st_entries;
  ignore keys

(* ---- v2 prototype table --------------------------------------------- *)

module Drc = Rsg_drc.Drc
module Deck = Rsg_drc.Deck

let deck_digest = Deck.digest Deck.default

(* Package a hierarchical DRC report as the per-prototype cache the
   codec stores: hex subtree digest -> [(deck digest, cached level)]. *)
let reports_of_hier (r : Drc.hier_report) =
  let by_hex =
    List.map
      (fun (l : Drc.level) ->
        ( l.Drc.l_hash,
          {
            Drc.cl_violations = l.Drc.l_violations;
            cl_contexts = l.Drc.l_contexts;
            cl_distinct = l.Drc.l_distinct;
            cl_boxes = l.Drc.l_boxes;
          } ))
      r.Drc.h_levels
  in
  fun hex ->
    match List.assoc_opt hex by_hex with
    | Some cl -> [ (deck_digest, cl) ]
    | None -> []

let cached_of_table (table : Codec.proto array) =
  let h = Hashtbl.create 32 in
  Array.iter
    (fun (p : Codec.proto) -> Hashtbl.replace h (Digest.to_hex p.Codec.p_hash) p)
    table;
  fun hex ->
    Option.bind (Hashtbl.find_opt h hex) (fun (p : Codec.proto) ->
        List.assoc_opt deck_digest p.Codec.p_reports)

let test_proto_roundtrip () =
  let cell =
    (Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 ()).Rsg_mult.Layout_gen.whole
  in
  let protos = Flatten.prototypes cell in
  let hier = Drc.check_protos ~domains:1 protos in
  let table =
    Codec.proto_table protos ~reused:(fun _ -> false)
      ~reports:(reports_of_hier hier)
  in
  Alcotest.(check bool) "table non-empty" true (Array.length table > 0);
  let flat = Flatten.protos_flat protos in
  let data = Codec.encode ~flat ~protos:table ~label:"mult 4x4" cell in
  let entry = Codec.decode data in
  Alcotest.(check int)
    "proto count survives" (Array.length table)
    (Array.length entry.Codec.e_protos);
  Array.iter2
    (fun (a : Codec.proto) (b : Codec.proto) ->
      Alcotest.(check string)
        "hash survives"
        (Digest.to_hex a.Codec.p_hash)
        (Digest.to_hex b.Codec.p_hash);
      Alcotest.(check bool) "reused survives" a.Codec.p_reused b.Codec.p_reused;
      Alcotest.(check int)
        "report count survives"
        (List.length a.Codec.p_reports)
        (List.length b.Codec.p_reports);
      (* the decoded proto cell's content digest must equal its stored
         hash — the table is self-consistently content-addressed *)
      let ps = Flatten.prototypes b.Codec.p_cell in
      Alcotest.(check string)
        "decoded cell digest = stored hash"
        (Digest.to_hex b.Codec.p_hash)
        (Flatten.subtree_hex ps (Flatten.protos_root ps)))
    table entry.Codec.e_protos;
  (* decode_protos reads only the table, and agrees with full decode *)
  let label, table' = Codec.decode_protos data in
  Alcotest.(check string) "decode_protos label" "mult 4x4" label;
  Alcotest.(check int)
    "decode_protos count" (Array.length table) (Array.length table');
  (* replaying every stored level recomputes nothing and reproduces the
     verdict *)
  let replay = Drc.check_protos ~domains:1 ~cached:(cached_of_table table') protos in
  Alcotest.(check int)
    "all levels replayed"
    (List.length replay.Drc.h_levels)
    replay.Drc.h_cached;
  Alcotest.(check bool)
    "replayed verdict agrees" (Drc.hier_clean hier) (Drc.hier_clean replay)

let test_compacts_roundtrip () =
  (* v3: condensed compaction artifacts ride in the prototype table,
     keyed by rule-deck digest, and survive the codec byte-exactly *)
  let module H = Rsg_compact.Hcompact in
  let cell = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let r = H.hier ~domains:1 Rsg_compact.Rules.default cell in
  Alcotest.(check bool) "hier produced artifacts" true (r.H.hr_artifacts <> []);
  let deck = Rsg_compact.Rules.digest Rsg_compact.Rules.default in
  let compacts hex =
    match
      List.find_opt (fun (h, _, _) -> h = hex) r.H.hr_artifacts
    with
    | Some (_, pa, _) -> [ (deck, pa) ]
    | None -> []
  in
  let protos = Flatten.prototypes cell in
  let table = Codec.proto_table protos ~compacts in
  Alcotest.(check bool) "some record carries artifacts" true
    (Array.exists (fun (p : Codec.proto) -> p.Codec.p_compacts <> []) table);
  let data = Codec.encode ~protos:table ~label:"pla" cell in
  let entry = Codec.decode data in
  Array.iter2
    (fun (a : Codec.proto) (b : Codec.proto) ->
      Alcotest.(check int) "compacts count survives"
        (List.length a.Codec.p_compacts)
        (List.length b.Codec.p_compacts);
      List.iter2
        (fun (da, pa) (db, pb) ->
          Alcotest.(check string) "deck digest survives" (Digest.to_hex da)
            (Digest.to_hex db);
          Alcotest.(check int) "wmin survives" pa.H.pa_wmin pb.H.pa_wmin;
          Alcotest.(check int) "hmin survives" pa.H.pa_hmin pb.H.pa_hmin;
          Alcotest.(check bool) "graphs survive exactly" true
            (pa.H.pa_cx = pb.H.pa_cx && pa.H.pa_cy = pb.H.pa_cy))
        a.Codec.p_compacts b.Codec.p_compacts)
    table entry.Codec.e_protos;
  (* decode_protos sees the same artifacts without touching the flat *)
  let _, table' = Codec.decode_protos data in
  Array.iter2
    (fun (a : Codec.proto) (b : Codec.proto) ->
      Alcotest.(check int) "decode_protos compacts"
        (List.length a.Codec.p_compacts)
        (List.length b.Codec.p_compacts))
    table table'

let test_sections_accounting () =
  (* the per-section breakdown accounts for the payload and lands in
     Store.stats so `rsg cache stats` can report it *)
  let module H = Rsg_compact.Hcompact in
  let cell = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let r = H.hier ~domains:1 Rsg_compact.Rules.default cell in
  let deck = Rsg_compact.Rules.digest Rsg_compact.Rules.default in
  let compacts hex =
    match List.find_opt (fun (h, _, _) -> h = hex) r.H.hr_artifacts with
    | Some (_, pa, _) -> [ (deck, pa) ]
    | None -> []
  in
  let protos = Flatten.prototypes cell in
  let table = Codec.proto_table protos ~compacts in
  let flat = Flatten.protos_flat protos in
  let data = Codec.encode ~flat ~protos:table ~label:"pla" cell in
  let secs = Codec.sections data in
  let sec name =
    match List.find_opt (fun (s : Codec.section) -> s.Codec.s_name = name) secs with
    | Some s -> s
    | None -> Alcotest.failf "missing section %s" name
  in
  (* every byte of the entry is accounted to exactly one section *)
  Alcotest.(check int) "bytes partition the entry" (String.length data)
    (List.fold_left (fun a (s : Codec.section) -> a + s.Codec.s_bytes) 0 secs);
  Alcotest.(check int) "one graph record per table record"
    (Array.length table) (sec "constraint graphs").Codec.s_entries;
  Alcotest.(check int) "proto geometry entries"
    (Array.length table) (sec "proto geometry").Codec.s_entries;
  Alcotest.(check int) "flat boxes"
    (Array.length flat.Flatten.flat_boxes)
    (sec "flat").Codec.s_entries;
  Alcotest.(check bool) "graph section is non-trivial" true
    ((sec "constraint graphs").Codec.s_bytes > 0);
  (* store-level aggregation: one entry's sections, verbatim *)
  let store = Store.open_ (temp_dir ()) in
  let key = Store.key ~design:"sections-test" ~params:"p" () in
  Store.save store key ~label:"pla" ~flat ~protos:table cell;
  let st = Store.stats store in
  List.iter
    (fun (s : Codec.section) ->
      let agg =
        match
          List.find_opt
            (fun (t : Codec.section) -> t.Codec.s_name = s.Codec.s_name)
            st.Store.st_sections
        with
        | Some t -> t
        | None -> Alcotest.failf "stats missing section %s" s.Codec.s_name
      in
      Alcotest.(check int) (s.Codec.s_name ^ " bytes aggregate")
        s.Codec.s_bytes agg.Codec.s_bytes;
      Alcotest.(check int) (s.Codec.s_name ^ " entries aggregate")
        s.Codec.s_entries agg.Codec.s_entries)
    secs;
  ignore (Store.clear store)

(* Cold, fully-cached and partially-cached (one edited row) checks must
   agree on the verdict at every domain count. *)
let test_incremental_agreement () =
  let cell_a = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let tt_b =
    Rsg_pla.Truth_table.of_strings
      [ ("10-", "10"); ("0-1", "01"); ("111", "11") ]
  in
  let cell_b = (Rsg_pla.Gen.generate tt_b).Rsg_pla.Gen.cell in
  let protos_a = Flatten.prototypes cell_a in
  let hier_a = Drc.check_protos ~domains:1 protos_a in
  let table =
    Codec.proto_table protos_a ~reused:(fun _ -> false)
      ~reports:(reports_of_hier hier_a)
  in
  let cached = cached_of_table table in
  List.iter
    (fun domains ->
      let protos_b = Flatten.prototypes cell_b in
      let fresh = Drc.check_protos ~domains protos_b in
      let incr = Drc.check_protos ~domains ~cached protos_b in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d replay reuses something" domains)
        true (incr.Drc.h_cached > 0);
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d not everything cached" domains)
        true
        (incr.Drc.h_cached < List.length incr.Drc.h_levels);
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d verdict agrees" domains)
        (Drc.hier_clean fresh) (Drc.hier_clean incr);
      List.iter2
        (fun (f : Drc.level) (i : Drc.level) ->
          Alcotest.(check string)
            (Printf.sprintf "domains=%d level hash" domains)
            f.Drc.l_hash i.Drc.l_hash;
          Alcotest.(check int)
            (Printf.sprintf "domains=%d level violations" domains)
            (List.length f.Drc.l_violations)
            (List.length i.Drc.l_violations))
        fresh.Drc.h_levels incr.Drc.h_levels)
    [ 1; 2 ]

(* Seeding pre-flattened arrays from a previous run's table must
   recompose to bit-identical geometry. *)
let test_seed_recompose () =
  let cell_a = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let tt_b =
    Rsg_pla.Truth_table.of_strings
      [ ("10-", "10"); ("0-1", "01"); ("111", "11") ]
  in
  let make_b () = (Rsg_pla.Gen.generate tt_b).Rsg_pla.Gen.cell in
  let protos_a = Flatten.prototypes cell_a in
  let fresh = Flatten.protos_flat (Flatten.prototypes (make_b ())) in
  let seeded_protos = Flatten.prototypes (make_b ()) in
  List.iter
    (fun (c, _hex) ->
      let f = Flatten.proto_flat protos_a c in
      Flatten.seed_proto seeded_protos
        ~hash:(Flatten.subtree_digest protos_a c)
        ~boxes:f.Flatten.flat_boxes ~labels:f.Flatten.flat_labels)
    (Flatten.subtree_hashes protos_a);
  Alcotest.(check bool)
    "seeded flat identical to fresh" true
    (flat_equal fresh (Flatten.protos_flat seeded_protos))

let test_ercs_roundtrip () =
  (* v4: cached ERC verdicts ride in the prototype table, keyed by the
     ERC config digest, and survive the codec exactly — censuses,
     diag severities and spans included *)
  let module Erc = Rsg_erc.Erc in
  let module Diag = Rsg_lint.Diag in
  let cell = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let r = Erc.check_cell ~domains:1 cell in
  let cfg = Erc.config_digest Erc.default_config Rsg_compact.Rules.default in
  let by_hash = Hashtbl.create 16 in
  List.iter
    (fun (l : Erc.level) ->
      Hashtbl.replace by_hash l.Erc.l_hash [ (cfg, l.Erc.l_verdict) ])
    r.Erc.r_levels;
  let protos = Flatten.prototypes cell in
  let ercs hex = Option.value ~default:[] (Hashtbl.find_opt by_hash hex) in
  let table = Codec.proto_table protos ~ercs in
  Alcotest.(check bool) "every record carries a verdict" true
    (Array.for_all (fun (p : Codec.proto) -> p.Codec.p_ercs <> []) table);
  let data = Codec.encode ~protos:table ~label:"pla" cell in
  (* a root verdict with diagnostics exercises the diag codec; E306
     at least is always present on this unlabeled design *)
  Alcotest.(check bool) "root verdict has diagnostics" true
    (Array.exists
       (fun (p : Codec.proto) ->
         List.exists (fun (_, v) -> v.Erc.cv_diags <> []) p.Codec.p_ercs)
       table);
  let check_table (table' : Codec.proto array) =
    Array.iter2
      (fun (a : Codec.proto) (b : Codec.proto) ->
        List.iter2
          (fun (da, va) (db, vb) ->
            Alcotest.(check string) "config digest survives"
              (Digest.to_hex da) (Digest.to_hex db);
            Alcotest.(check int) "nets" va.Erc.cv_nets vb.Erc.cv_nets;
            Alcotest.(check int) "devices" va.Erc.cv_devices vb.Erc.cv_devices;
            Alcotest.(check int) "open" va.Erc.cv_open vb.Erc.cv_open;
            Alcotest.(check int) "rails" va.Erc.cv_rails vb.Erc.cv_rails;
            Alcotest.(check bool) "diags survive exactly" true
              (va.Erc.cv_diags = vb.Erc.cv_diags))
          a.Codec.p_ercs b.Codec.p_ercs)
      table table'
  in
  check_table (Codec.decode data).Codec.e_protos;
  check_table (snd (Codec.decode_protos data));
  (* the replayed verdicts reproduce the fresh report bit-exactly *)
  let tbl : (string, Erc.cached_verdict) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (p : Codec.proto) ->
      List.iter
        (fun (d, v) -> if d = cfg then Hashtbl.replace tbl (Digest.to_hex p.Codec.p_hash) v)
        p.Codec.p_ercs)
    (snd (Codec.decode_protos data));
  let r2 = Erc.check_cell ~domains:1 ~cached:(Hashtbl.find_opt tbl) cell in
  Alcotest.(check int) "all levels replay" (List.length r2.Erc.r_levels)
    r2.Erc.r_cached;
  Alcotest.(check string) "replayed diagnostics identical"
    (Diag.report_to_json (Erc.to_diags r))
    (Diag.report_to_json (Erc.to_diags r2));
  (* the sections table accounts the new payload section *)
  let row =
    List.find
      (fun (s : Codec.section) -> s.Codec.s_name = "erc verdicts")
      (Codec.sections data)
  in
  Alcotest.(check int) "one verdict per record" (Array.length table)
    row.Codec.s_entries;
  Alcotest.(check bool) "verdict bytes accounted" true (row.Codec.s_bytes > 0)

let test_places_roundtrip () =
  (* v5: cached placement-search evaluations ride on the root record,
     keyed by MD5(candidate digest ^ rule-deck digest), and survive
     the codec exactly *)
  let cell = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let protos = Flatten.prototypes cell in
  let root_hex = Digest.to_hex (Flatten.subtree_digest protos cell) in
  let deck = Rsg_compact.Rules.digest Rsg_compact.Rules.default in
  let evals =
    List.map
      (fun (cand, area) -> (Digest.string (Digest.string cand ^ deck), area))
      [ ("cand-a", 1234); ("cand-b", 987654); ("cand-c", 7) ]
  in
  let places hex = if hex = root_hex then evals else [] in
  let table = Codec.proto_table protos ~places in
  Alcotest.(check bool) "root record carries the evals" true
    (Array.exists (fun (p : Codec.proto) -> p.Codec.p_places = evals) table);
  let data = Codec.encode ~protos:table ~label:"pla" cell in
  let check_table (table' : Codec.proto array) =
    Array.iter2
      (fun (a : Codec.proto) (b : Codec.proto) ->
        Alcotest.(check int) "eval count survives"
          (List.length a.Codec.p_places)
          (List.length b.Codec.p_places);
        List.iter2
          (fun (ka, aa) (kb, ab) ->
            Alcotest.(check string) "eval key survives" (Digest.to_hex ka)
              (Digest.to_hex kb);
            Alcotest.(check int) "eval area survives" aa ab)
          a.Codec.p_places b.Codec.p_places)
      table table'
  in
  check_table (Codec.decode data).Codec.e_protos;
  check_table (snd (Codec.decode_protos data));
  (* the sections table accounts the new payload section *)
  let row =
    List.find
      (fun (s : Codec.section) -> s.Codec.s_name = "place evals")
      (Codec.sections data)
  in
  Alcotest.(check int) "three evals accounted" 3 row.Codec.s_entries;
  Alcotest.(check bool) "eval bytes accounted" true (row.Codec.s_bytes > 0)

(* ---- store maintenance and incremental lookup ------------------------ *)

(* A v1-era entry must be a clean miss — deleted, never mis-decoded —
   and the re-save must warm the slot again. *)
let test_v1_stale_miss () =
  let st = Store.open_ (temp_dir ()) in
  let cell = (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell in
  let k = Store.key ~design:"decoder" ~params:"n=3" () in
  Store.save st k ~label:"decoder 3" cell;
  let path = Store.path_of st k in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  (* the version field is the u32 after the 4-byte magic: find the
     byte holding the current version and patch it to 1, whatever the
     endianness *)
  let patched = ref false in
  for i = 4 to 7 do
    if Bytes.get b i = Char.chr Codec.format_version then begin
      Bytes.set b i '\001';
      patched := true
    end
  done;
  Alcotest.(check bool) "version byte found" true !patched;
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (match Store.find st k with
  | Store.Miss -> ()
  | Store.Hit _ -> Alcotest.fail "v1 entry mis-decoded as hit"
  | Store.Corrupt _ -> Alcotest.fail "v1 entry reported corrupt, not stale");
  Alcotest.(check bool) "stale entry deleted" false (Sys.file_exists path);
  Store.save st k ~label:"decoder 3" cell;
  (match Store.find st k with
  | Store.Hit _ -> ()
  | _ -> Alcotest.fail "re-save did not re-warm");
  ignore (Store.clear st)

(* The v3->v4 bump (cached ERC verdicts in the prototype table) makes
   last generation's entries stale: reading one must be a clean miss
   — [Bad_version], deleted, counted stale, never [Corrupt] — and the
   slot must re-warm. *)
let test_v3_stale_miss () =
  let st = Store.open_ (temp_dir ()) in
  let cell = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let k = Store.key ~design:"pla" ~params:"tt" () in
  Store.save st k ~label:"pla" cell;
  let path = Store.path_of st k in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let patched = ref false in
  for i = 4 to 7 do
    if Bytes.get b i = Char.chr Codec.format_version then begin
      Bytes.set b i '\003';
      patched := true
    end
  done;
  Alcotest.(check bool) "version byte found" true !patched;
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (match Codec.decode (Bytes.to_string b) with
  | exception Codec.Error (Codec.Bad_version { found; expected }) ->
    Alcotest.(check int) "found v3" 3 found;
    Alcotest.(check int) "expects v5" 5 expected
  | _ -> Alcotest.fail "v3 entry decoded under a v5 reader");
  (match Store.find st k with
  | Store.Miss -> ()
  | Store.Hit _ -> Alcotest.fail "v3 entry mis-decoded as hit"
  | Store.Corrupt _ -> Alcotest.fail "v3 entry reported corrupt, not stale");
  Alcotest.(check bool) "stale entry deleted" false (Sys.file_exists path);
  Store.save st k ~label:"pla" cell;
  (match Store.find st k with
  | Store.Hit _ -> ()
  | _ -> Alcotest.fail "re-save did not re-warm");
  ignore (Store.clear st)

(* The v4->v5 bump (cached place evaluations in the prototype table)
   makes last generation's entries stale: same contract as v3->v4. *)
let test_v4_stale_miss () =
  let st = Store.open_ (temp_dir ()) in
  let cell = (Rsg_pla.Gen.generate (pla_tt ())).Rsg_pla.Gen.cell in
  let k = Store.key ~design:"pla" ~params:"tt" () in
  Store.save st k ~label:"pla" cell;
  let path = Store.path_of st k in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let patched = ref false in
  for i = 4 to 7 do
    if Bytes.get b i = Char.chr Codec.format_version then begin
      Bytes.set b i '\004';
      patched := true
    end
  done;
  Alcotest.(check bool) "version byte found" true !patched;
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  (match Codec.decode (Bytes.to_string b) with
  | exception Codec.Error (Codec.Bad_version { found; expected }) ->
    Alcotest.(check int) "found v4" 4 found;
    Alcotest.(check int) "expects v5" 5 expected
  | _ -> Alcotest.fail "v4 entry decoded under a v5 reader");
  (match Store.find st k with
  | Store.Miss -> ()
  | Store.Hit _ -> Alcotest.fail "v4 entry mis-decoded as hit"
  | Store.Corrupt _ -> Alcotest.fail "v4 entry reported corrupt, not stale");
  Alcotest.(check bool) "stale entry deleted" false (Sys.file_exists path);
  Store.save st k ~label:"pla" cell;
  (match Store.find st k with
  | Store.Hit _ -> ()
  | _ -> Alcotest.fail "re-save did not re-warm");
  ignore (Store.clear st)

let touch path =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "x")

let test_tmp_sweep () =
  let st = Store.open_ (temp_dir ()) in
  let old_tmp = Filename.concat (Store.dir st) ".rsgdb-dead.tmp" in
  let fresh_tmp = Filename.concat (Store.dir st) ".rsgdb-live.tmp" in
  touch old_tmp;
  touch fresh_tmp;
  let ago = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes old_tmp ago ago;
  Alcotest.(check int) "sweeps only the old orphan" 1 (Store.sweep_tmp st);
  Alcotest.(check bool) "old orphan gone" false (Sys.file_exists old_tmp);
  Alcotest.(check bool) "fresh temp kept" true (Sys.file_exists fresh_tmp);
  (* gc runs the sweep too *)
  Unix.utimes fresh_tmp ago ago;
  let _ = Store.gc st in
  Alcotest.(check bool) "gc swept the aged temp" false (Sys.file_exists fresh_tmp)

(* Maintenance must survive (and not double-count) files a concurrent
   process removed first. *)
let test_removal_races () =
  let st = Store.open_ (temp_dir ()) in
  let cell = Cell.create "c" in
  Cell.add_box cell Layer.Poly (Box.make ~xmin:0 ~ymin:0 ~xmax:2 ~ymax:2);
  let k1 = Store.key ~design:"d" ~params:"1" () in
  let k2 = Store.key ~design:"d" ~params:"2" () in
  Store.save st k1 ~label:"one" cell;
  Store.save st k2 ~label:"two" cell;
  Sys.remove (Store.path_of st k1);
  Alcotest.(check int) "clear counts only real removals" 1 (Store.clear st);
  Store.save st k1 ~label:"one" cell;
  Store.save st k2 ~label:"two" cell;
  Sys.remove (Store.path_of st k2);
  Alcotest.(check int)
    "gc counts only real removals" 1
    (Store.gc ~max_bytes:0 st);
  ignore (Store.clear st)

let test_latest_and_harvest () =
  let st = Store.open_ (temp_dir ()) in
  let cell = (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell in
  let protos = Flatten.prototypes cell in
  let table = Codec.proto_table protos in
  let k = Store.key ~design:"decoder" ~params:"n=3" () in
  Alcotest.(check bool) "no pointer yet" true (Store.latest st ~stem:"dec" = None);
  Alcotest.(check bool) "nothing to harvest" true (Store.harvest st ~stem:"dec" = None);
  Store.save st k ~stem:"dec" ~label:"decoder 3" ~protos:table cell;
  (match Store.latest st ~stem:"dec" with
  | Some k' -> Alcotest.(check string) "pointer names the key" (Store.key_hex k) (Store.key_hex k')
  | None -> Alcotest.fail "pointer not written");
  (match Store.harvest st ~stem:"dec" with
  | Some (k', table') ->
    Alcotest.(check string) "harvest key" (Store.key_hex k) (Store.key_hex k');
    Alcotest.(check int) "harvest table size" (Array.length table) (Array.length table');
    Array.iter2
      (fun (a : Codec.proto) (b : Codec.proto) ->
        Alcotest.(check string) "harvest hash"
          (Digest.to_hex a.Codec.p_hash) (Digest.to_hex b.Codec.p_hash))
      table table'
  | None -> Alcotest.fail "harvest failed after save");
  (* an unrelated stem sees nothing *)
  Alcotest.(check bool) "stems are isolated" true (Store.harvest st ~stem:"other" = None);
  (* dangling pointer (entry deleted behind our back) harvests nothing *)
  Sys.remove (Store.path_of st k);
  Alcotest.(check bool) "dangling pointer" true (Store.harvest st ~stem:"dec" = None);
  ignore (Store.clear st)

(* A garbled [.latest] pointer — truncated write from a pre-atomic
   era, or tampering — must read as a clean [None], be deleted so it
   costs one report, and be counted on [store.bad_pointer]. *)
let test_bad_pointer () =
  let module Obs = Rsg_obs.Obs in
  let st = Store.open_ (temp_dir ()) in
  let cell = (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell in
  let k = Store.key ~design:"decoder" ~params:"n=3" () in
  Store.save st k ~stem:"dec" ~label:"decoder 3" cell;
  let pointer_file () =
    Array.to_list (Sys.readdir (Store.dir st))
    |> List.filter (fun f -> Filename.check_suffix f ".latest")
    |> function
    | [ f ] -> Filename.concat (Store.dir st) f
    | l -> Alcotest.failf "expected one pointer file, found %d" (List.length l)
  in
  let path = pointer_file () in
  let garble s =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
  in
  let was_enabled = Obs.is_enabled () in
  Obs.enable ();
  let bad_count () =
    Option.value ~default:0 (List.assoc_opt "store.bad_pointer" (Obs.counters ()))
  in
  List.iter
    (fun junk ->
      garble junk;
      let before = bad_count () in
      (match Store.latest st ~stem:"dec" with
      | None -> ()
      | Some _ -> Alcotest.failf "garbled pointer %S decoded" junk);
      Alcotest.(check int) "bad pointer counted" (before + 1) (bad_count ());
      Alcotest.(check bool) "pointer file removed" false (Sys.file_exists path);
      (* with the pointer gone, the miss is silent — no second report *)
      Alcotest.(check bool) "miss after removal" true
        (Store.latest st ~stem:"dec" = None);
      Alcotest.(check int) "no double count" (before + 1) (bad_count ());
      (* harvest follows the same path and stays a clean None *)
      Alcotest.(check bool) "harvest clean miss" true
        (Store.harvest st ~stem:"dec" = None);
      (* and a fresh save re-installs a working pointer *)
      Store.save st k ~stem:"dec" ~label:"decoder 3" cell;
      match Store.latest st ~stem:"dec" with
      | Some k' ->
        Alcotest.(check string) "pointer healed" (Store.key_hex k)
          (Store.key_hex k')
      | None -> Alcotest.fail "re-save did not restore the pointer")
    [ ""; "deadbeef"; "not hex at all"; String.make 31 'a';
      String.make 32 'Z'; String.make 64 'a' ];
  if not was_enabled then Obs.disable ();
  ignore (Store.clear st)

(* The advisory lock: value passthrough, exception safety, shared
   mode, and actual mutual exclusion against a second process image
   (two store handles on one directory in the same process would
   deadlock by design, so exclusion is observed via file effects). *)
let test_with_lock () =
  let st = Store.open_ (temp_dir ()) in
  Alcotest.(check int) "value passes through" 42
    (Store.with_lock st (fun () -> 42));
  Alcotest.(check int) "shared mode too" 7
    (Store.with_lock ~shared:true st (fun () -> 7));
  (match Store.with_lock st (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  (* the lock was released by the raise: this would hang otherwise *)
  Alcotest.(check int) "lock released after raise" 1
    (Store.with_lock st (fun () -> 1));
  (* mutators still work under an explicit outer lock's directory *)
  let cell = Cell.create "c" in
  Cell.add_box cell Layer.Poly (Box.make ~xmin:0 ~ymin:0 ~xmax:2 ~ymax:2);
  let k = Store.key ~design:"d" ~params:"1" () in
  Store.save st k ~label:"one" cell;
  (match Store.find st k with
  | Store.Hit _ -> ()
  | _ -> Alcotest.fail "save under locking regime lost");
  ignore (Store.clear st)

(* ---- geometric dirtiness --------------------------------------------- *)

(* Construction plan for a random acyclic pool: cell [i] may only
   instantiate cells [j < i].  Building from a plan (instead of hashing
   one mutable pool twice) lets the property compare a pristine build
   against one with a single edited cell. *)
type plan_op =
  | P_box of Layer.t * Box.t
  | P_label of string * Vec.t
  | P_inst of int * Orient.t * Vec.t

let gen_plan st =
  let open QCheck.Gen in
  let n_layers = List.length Layer.all in
  let coord st = int_range (-500) 500 st in
  let rand_box st =
    let x = coord st and y = coord st in
    let w = int_range 0 200 st and h = int_range 0 200 st in
    Box.make ~xmin:x ~ymin:y ~xmax:(x + w) ~ymax:(y + h)
  in
  let n_cells = int_range 2 7 st in
  let plan =
    Array.init n_cells (fun i ->
        List.init (int_range 1 8 st) (fun _ ->
            match int_range 0 2 st with
            | 0 ->
              P_box
                ( Layer.of_index_exn (int_range 0 (n_layers - 1) st),
                  rand_box st )
            | 1 ->
              P_label (Printf.sprintf "l%d" (int_range 0 99 st),
                       Vec.make (coord st) (coord st))
            | _ ->
              if i = 0 then P_box (Layer.Metal, rand_box st)
              else
                P_inst
                  ( int_range 0 (i - 1) st,
                    Orient.of_index (int_range 0 7 st),
                    Vec.make (coord st) (coord st) )))
  in
  let edited = int_range 0 (n_cells - 1) st in
  (plan, edited)

let build_pool ?edit plan =
  let pool =
    Array.mapi (fun i _ -> Cell.create (Printf.sprintf "pc%d" i)) plan
  in
  Array.iteri
    (fun i ops ->
      List.iter
        (fun op ->
          match op with
          | P_box (l, bx) -> Cell.add_box pool.(i) l bx
          | P_label (s, v) -> Cell.add_label pool.(i) s v
          | P_inst (j, orient, at) ->
            ignore (Cell.add_instance pool.(i) ~orient ~at pool.(j)))
        ops;
      if edit = Some i then
        Cell.add_box pool.(i) Layer.Implant
          (Box.make ~xmin:9000 ~ymin:9000 ~xmax:9004 ~ymax:9004))
    plan;
  pool

(* cell [i]'s subtree digest, hashing [i] as its own root *)
let digest_of pool i =
  let p = Flatten.prototypes pool.(i) in
  Flatten.subtree_hex p (Flatten.protos_root p)

let reaches plan i k =
  let rec go i =
    i = k
    || List.exists
         (function P_inst (j, _, _) -> go j | _ -> false)
         plan.(i)
  in
  go i

let qcheck_edit_dirtiness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"one edit dirties exactly the edited cell and its ancestors"
       (QCheck.make gen_plan)
       (fun (plan, edited) ->
         let base = build_pool plan in
         let touched = build_pool ~edit:edited plan in
         Array.for_all Fun.id
           (Array.mapi
              (fun i _ ->
                let changed = digest_of base i <> digest_of touched i in
                changed = reaches plan i edited)
              plan)))

(* ---- batch ----------------------------------------------------------- *)

let batch_jobs () =
  List.mapi
    (fun i (name, build) ->
      {
        Batch.j_name = Printf.sprintf "%02d-%s" i name;
        j_kind = name;
        j_key = Store.key ~design:name ~params:(string_of_int i) ();
        j_label = name;
        j_gen = build;
      })
    (families @ families)

let outcome_tag = function
  | Batch.Hit -> "hit"
  | Batch.Generated -> "gen"
  | Batch.Regenerated _ -> "regen"
  | Batch.Failed _ -> "failed"

let cif_of_results rs =
  List.map
    (fun r ->
      match r.Batch.r_cell with
      | Some c -> Cif.to_string c
      | None -> "<failed>")
    rs

let test_batch_hits_and_determinism () =
  let st = Store.open_ (temp_dir ()) in
  let jobs = batch_jobs () in
  let cold = Batch.run ~domains:2 ~store:st jobs in
  Alcotest.(check int) "all ran" (List.length jobs) (List.length cold);
  List.iter
    (fun r ->
      Alcotest.(check string)
        (r.Batch.r_job.Batch.j_name ^ " cold outcome")
        "gen"
        (outcome_tag r.Batch.r_outcome);
      Alcotest.(check bool)
        (r.Batch.r_job.Batch.j_name ^ " has boxes")
        true (r.Batch.r_boxes > 0))
    cold;
  (* manifest order is preserved *)
  Alcotest.(check (list string))
    "result order = manifest order"
    (List.map (fun j -> j.Batch.j_name) jobs)
    (List.map (fun r -> r.Batch.r_job.Batch.j_name) cold);
  let warm = Batch.run ~domains:2 ~store:st jobs in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (r.Batch.r_job.Batch.j_name ^ " warm outcome")
        "hit"
        (outcome_tag r.Batch.r_outcome))
    warm;
  Alcotest.(check (list string))
    "warm layouts identical to cold" (cif_of_results cold)
    (cif_of_results warm);
  (* any domain count produces the same outputs *)
  let d1 = Batch.run ~domains:1 ~store:st jobs in
  Alcotest.(check (list string))
    "domains=1 identical" (cif_of_results cold) (cif_of_results d1);
  ignore (Store.clear st)

let test_batch_corrupt_fallback () =
  let st = Store.open_ (temp_dir ()) in
  let jobs = batch_jobs () in
  let cold = Batch.run ~domains:1 ~store:st jobs in
  (* smash the first job's entry: flip a payload byte so the container
     still frames (a version mismatch would be a stale miss, not
     corruption) but the checksum fails *)
  let first = List.hd jobs in
  let path = Store.path_of st first.Batch.j_key in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let mid = 16 + ((Bytes.length b - 16) / 2) in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  let warm = Batch.run ~domains:2 ~store:st jobs in
  let r0 = List.hd warm in
  Alcotest.(check string) "first regenerated" "regen"
    (outcome_tag r0.Batch.r_outcome);
  (* fallback regeneration is box-for-box identical *)
  Alcotest.(check (list string))
    "fallback layouts identical" (cif_of_results cold) (cif_of_results warm);
  (match (r0.Batch.r_flat, (List.hd cold).Batch.r_flat) with
  | Some a, Some b ->
    Alcotest.(check bool) "fallback flat identical" true (flat_equal a b)
  | _ -> Alcotest.fail "missing flat");
  (* and the re-save healed the entry *)
  match Store.find st first.Batch.j_key with
  | Store.Hit _ -> ignore (Store.clear st)
  | _ -> Alcotest.fail "entry not healed after regeneration"

let () =
  Alcotest.run "rsg_store"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip all families" `Quick
            test_roundtrip_families;
          Alcotest.test_case "roundtrip without flat" `Quick
            test_roundtrip_no_flat;
          Alcotest.test_case "corruption detected" `Quick
            test_corruption_detected;
          Alcotest.test_case "typed error kinds" `Quick test_error_kinds;
          qcheck_roundtrip;
        ] );
      ( "key",
        [ Alcotest.test_case "sensitivity" `Quick test_key_sensitivity ] );
      ( "store",
        [
          Alcotest.test_case "lookup lifecycle" `Quick test_store_lookup;
          Alcotest.test_case "stats and gc" `Quick test_store_stats_gc;
          Alcotest.test_case "stale v1 is a clean miss" `Quick
            test_v1_stale_miss;
          Alcotest.test_case "stale v3 is a clean miss" `Quick
            test_v3_stale_miss;
          Alcotest.test_case "stale v4 is a clean miss" `Quick
            test_v4_stale_miss;
          Alcotest.test_case "orphaned temp sweep" `Quick test_tmp_sweep;
          Alcotest.test_case "removal races" `Quick test_removal_races;
          Alcotest.test_case "latest pointer and harvest" `Quick
            test_latest_and_harvest;
          Alcotest.test_case "garbled pointer is a clean miss" `Quick
            test_bad_pointer;
          Alcotest.test_case "advisory lock" `Quick test_with_lock;
        ] );
      ( "protos",
        [
          Alcotest.test_case "table roundtrip and replay" `Quick
            test_proto_roundtrip;
          Alcotest.test_case "compaction artifacts roundtrip" `Quick
            test_compacts_roundtrip;
          Alcotest.test_case "erc verdicts roundtrip" `Quick
            test_ercs_roundtrip;
          Alcotest.test_case "place evals roundtrip" `Quick
            test_places_roundtrip;
          Alcotest.test_case "sections accounting" `Quick
            test_sections_accounting;
          Alcotest.test_case "incremental agreement" `Quick
            test_incremental_agreement;
          Alcotest.test_case "seeded recomposition" `Quick
            test_seed_recompose;
          qcheck_edit_dirtiness;
        ] );
      ( "batch",
        [
          Alcotest.test_case "hits and determinism" `Quick
            test_batch_hits_and_determinism;
          Alcotest.test_case "corrupt fallback" `Quick
            test_batch_corrupt_fallback;
        ] );
    ]

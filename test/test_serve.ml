(* Tests for lib/serve: the JSON codec, the manifest grammar shared
   with the CLI, and — against a real in-process daemon — protocol
   robustness (malformed frames, oversized requests, half-closed
   sockets), admission control (deadlines, queue_full), request
   coalescing, and graceful drain.  Every hostile input must come back
   as a structured error with the daemon still alive. *)

open Rsg_serve

(* ---- in-process daemon harness -------------------------------------- *)

let temp_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rsg-serve-%d-%d.sock" (Unix.getpid ()) !n)

type server = { s_thread : Thread.t; s_socket : string }

let start ?(workers = 1) ?(queue = 4) ?(max_request = 1024 * 1024) () =
  let socket = temp_sock () in
  let cfg =
    {
      (Serve.default_config ~socket_path:socket) with
      workers;
      queue_depth = queue;
      max_request;
      handle_signals = false;
    }
  in
  let ready = Atomic.make false in
  let th =
    Thread.create
      (fun () -> Serve.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon did not become ready";
  { s_thread = th; s_socket = socket }

let connect srv =
  match Client.connect ~attempts:10 srv.s_socket with
  | Ok c -> c
  | Error msg -> Alcotest.fail msg

let obj fields = Json.Obj fields
let str s = Json.String s

let request ?deadline ~id op fields =
  obj
    ([ ("id", str id); ("op", str op) ]
    @ fields
    @ match deadline with None -> [] | Some d -> [ ("deadline_ms", d) ])

let rq c v =
  match Client.request c v with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("request failed: " ^ msg)

let check_ok what r =
  Alcotest.(check bool) (what ^ " ok") true (Client.response_ok r)

let check_err what code r =
  Alcotest.(check bool) (what ^ " not ok") false (Client.response_ok r);
  Alcotest.(check (option string))
    (what ^ " error code") (Some code)
    (Json.mem_string "error" r)

let id_of r = Json.member "id" r

let stop srv =
  (let c = connect srv in
   let r = rq c (request ~id:"bye" "shutdown" []) in
   check_ok "shutdown" r;
   Client.close c);
  Thread.join srv.s_thread;
  Alcotest.(check bool)
    "socket removed after drain" false
    (Sys.file_exists srv.s_socket)

let health_ok what c = check_ok what (rq c (request ~id:"h" "health" []))

(* result.counters.<name> from a stats response, 0 when absent *)
let counter c name =
  let r = rq c (request ~id:"st" "stats" []) in
  check_ok "stats" r;
  match
    Option.bind (Json.member "result" r) (fun res ->
        Option.bind (Json.member "counters" res) (fun cs ->
            Option.bind (Json.member name cs) Json.to_int_opt))
  with
  | Some n -> n
  | None -> 0

(* ---- JSON codec ------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      ({|{"a":1,"b":[true,false,null],"c":"x"}|}, true);
      ({|"plain string"|}, true);
      ({|[1,-2,3.5,1e3]|}, true);
      ({|{"esc":"a\"b\\c\nd\tuA"}|}, true);
      ({|{"pair":"😀"}|}, true);
      ({|{"a":1} trailing|}, false);
      ({|{"a":}|}, false);
      ({|[1,2|}, false);
      ({|{"a" 1}|}, false);
      ("", false);
    ]
  in
  List.iter
    (fun (text, ok) ->
      match Json.parse text with
      | Ok v ->
        Alcotest.(check bool) (text ^ " accepted") true ok;
        (* reprint and reparse: the compact form is a fixed point *)
        let printed = Json.to_string v in
        (match Json.parse printed with
        | Ok v2 ->
          Alcotest.(check string)
            (text ^ " print fixpoint") printed (Json.to_string v2)
        | Error m -> Alcotest.fail (printed ^ " reparse failed: " ^ m))
      | Error _ -> Alcotest.(check bool) (text ^ " rejected") false ok)
    cases;
  (* \u escapes — BMP and a surrogate pair — decode to UTF-8 bytes *)
  (match Json.parse {|"A\u00e9\u4e2d\ud83d\ude00"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string)
      "utf-8 escapes" "A\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "escape string did not parse");
  (* pathological nesting is rejected, not a stack overflow *)
  let deep = String.make 500 '[' ^ String.make 500 ']' in
  match Json.parse deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "500-deep nesting accepted"

let test_json_accessors () =
  let v =
    Result.get_ok (Json.parse {|{"s":"x","i":7,"b":true,"l":[1],"n":null}|})
  in
  Alcotest.(check (option string)) "string" (Some "x") (Json.mem_string "s" v);
  Alcotest.(check (option int)) "int" (Some 7) (Json.mem_int "i" v);
  Alcotest.(check (option bool)) "bool" (Some true) (Json.mem_bool "b" v);
  Alcotest.(check bool) "list" true (Json.member "l" v <> None);
  Alcotest.(check bool) "null present" true (Json.member "n" v = Some Json.Null);
  Alcotest.(check bool) "absent" true (Json.member "zz" v = None);
  Alcotest.(check (option int)) "wrong type" None (Json.mem_int "s" v)

(* ---- manifest grammar ------------------------------------------------ *)

let test_jobspec_grammar () =
  (match Jobspec.parse_manifest "m4 multiplier size=4\n# comment\n\nd3 decoder n=3\n" with
  | Ok jobs ->
    Alcotest.(check (list string))
      "names parsed" [ "m4"; "d3" ]
      (List.map (fun j -> j.Rsg_store.Batch.j_name) jobs)
  | Error msg -> Alcotest.fail msg);
  let expect_err what text =
    match Jobspec.parse_manifest text with
    | Ok _ -> Alcotest.fail (what ^ ": accepted")
    | Error _ -> ()
  in
  expect_err "empty manifest" "# only comments\n";
  expect_err "duplicate names" "a multiplier size=4\na multiplier size=8\n";
  expect_err "unknown kind" "a frobnicator size=4\n";
  expect_err "bad param" "a multiplier size=banana\n";
  expect_err "size out of range" "a multiplier size=0\n";
  expect_err "decoder too wide" "a decoder n=40\n";
  expect_err "rom without words" "a rom\n";
  expect_err "pla without rows" "a pla\n";
  expect_err "missing table file" "a pla table=/nonexistent/tt\n";
  (* params have CLI-compatible defaults: a bare decoder is n=3 *)
  match Jobspec.parse_manifest "a decoder\n" with
  | Ok [ j ] ->
    Alcotest.(check string) "default label" "decoder 3" j.Rsg_store.Batch.j_label
  | Ok _ -> Alcotest.fail "expected one job"
  | Error msg -> Alcotest.fail ("defaults rejected: " ^ msg)

(* ---- protocol robustness --------------------------------------------- *)

let test_malformed_frames () =
  let srv = start () in
  let c = connect srv in
  let raw what line code =
    (match Client.send_line c line with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    let r = match Client.recv c with Ok r -> r | Error m -> Alcotest.fail m in
    check_err what code r;
    r
  in
  let r = raw "garbage" "this is not json {" "bad_request" in
  Alcotest.(check bool) "garbage id null" true (id_of r = Some Json.Null);
  ignore (raw "non-object" "[1,2,3]" "bad_request");
  let r = raw "unknown op" {|{"id":7,"op":"frobnicate"}|} "bad_request" in
  Alcotest.(check bool) "id echoed on error" true (id_of r = Some (Json.Int 7));
  ignore (raw "missing op" {|{"id":"x","spec":"m multiplier size=4"}|} "bad_request");
  ignore (raw "missing spec" {|{"id":"y","op":"generate"}|} "bad_request");
  ignore (raw "bad spec" {|{"id":"z","op":"generate","spec":"m frob size=4"}|} "bad_request");
  ignore (raw "negative sleep" {|{"id":"s","op":"sleep","ms":-1}|} "bad_request");
  (* after all that abuse, the daemon is healthy on the same connection *)
  health_ok "still alive" c;
  Client.close c;
  stop srv

let test_oversized_request () =
  let srv = start ~max_request:4096 () in
  let c = connect srv in
  (* an 8 KiB line can never frame under a 4 KiB cap: the daemon must
     answer too_large and close, because it cannot resynchronise *)
  let huge =
    {|{"id":"big","op":"generate","spec":"|} ^ String.make 8192 'x' ^ {|"}|}
  in
  (match Client.send_line c huge with Ok () -> () | Error m -> Alcotest.fail m);
  let r = match Client.recv c with Ok r -> r | Error m -> Alcotest.fail m in
  check_err "oversized" "too_large" r;
  (match Client.recv c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "connection not closed after too_large");
  Client.close c;
  (* the daemon itself is fine; fresh connections work *)
  let c2 = connect srv in
  health_ok "fresh connection" c2;
  Client.close c2;
  stop srv

let test_half_closed_socket () =
  let srv = start () in
  (* speak raw Unix so we can send a final line with no newline and
     half-close: EOF must flush the unterminated request, the response
     must still be delivered, then the daemon closes its side *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX srv.s_socket);
  let line = {|{"id":"hc","op":"health"}|} in
  let n = String.length line in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd line !off (n - !off)
  done;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k ->
      Buffer.add_subbytes buf chunk 0 k;
      drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  Unix.close fd;
  let text = String.trim (Buffer.contents buf) in
  (match Json.parse text with
  | Ok r ->
    check_ok "half-closed final line answered" r;
    Alcotest.(check bool) "id echoed" true (id_of r = Some (Json.String "hc"))
  | Error m -> Alcotest.fail ("unparseable response: " ^ m));
  (* a half-close that sends nothing at all is just a quiet goodbye *)
  let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd2 (Unix.ADDR_UNIX srv.s_socket);
  Unix.shutdown fd2 Unix.SHUTDOWN_SEND;
  (match Unix.read fd2 chunk 0 16 with
  | 0 -> ()
  | _ -> Alcotest.fail "daemon wrote to a silent connection");
  Unix.close fd2;
  let c = connect srv in
  health_ok "daemon alive" c;
  Client.close c;
  stop srv

(* ---- admission: deadlines and queue_full ----------------------------- *)

let test_deadline_expired () =
  let srv = start () in
  let c = connect srv in
  let r =
    rq c (request ~id:"d0" ~deadline:(Json.Int 0) "sleep" [ ("ms", Json.Int 50) ])
  in
  check_err "deadline 0" "deadline_expired" r;
  let r =
    rq c
      (request ~id:"dneg" ~deadline:(Json.Int (-5)) "sleep"
         [ ("ms", Json.Int 50) ])
  in
  check_err "negative deadline" "deadline_expired" r;
  (* a non-integer deadline is expired on arrival, deterministically *)
  let r =
    rq c
      (request ~id:"dstr" ~deadline:(str "soon") "sleep" [ ("ms", Json.Int 50) ])
  in
  check_err "non-integer deadline" "deadline_expired" r;
  (* a generous deadline admits and runs *)
  let r =
    rq c
      (request ~id:"dok" ~deadline:(Json.Int 30_000) "sleep"
         [ ("ms", Json.Int 10) ])
  in
  check_ok "generous deadline" r;
  health_ok "daemon alive" c;
  Client.close c;
  stop srv

let test_queue_full () =
  let srv = start ~workers:1 ~queue:1 () in
  let c = connect srv in
  let send v =
    match Client.send c v with Ok () -> () | Error m -> Alcotest.fail m
  in
  (* occupy the one worker, and give it time to pick the job up so the
     queue is empty when the burst lands *)
  send (request ~id:"busy" "sleep" [ ("ms", Json.Int 600) ]);
  Thread.delay 0.2;
  (* burst of three: one fills the queue slot, two must be rejected *)
  List.iter
    (fun id -> send (request ~id "sleep" [ ("ms", Json.Int 20) ]))
    [ "q1"; "q2"; "q3" ];
  let responses =
    List.init 4 (fun _ ->
        match Client.recv c with Ok r -> r | Error m -> Alcotest.fail m)
  in
  let outcome id =
    match
      List.find_opt (fun r -> id_of r = Some (Json.String id)) responses
    with
    | Some r ->
      if Client.response_ok r then "ok"
      else Option.value ~default:"?" (Json.mem_string "error" r)
    | None -> "missing"
  in
  Alcotest.(check string) "busy job ran" "ok" (outcome "busy");
  let burst = List.map outcome [ "q1"; "q2"; "q3" ] in
  Alcotest.(check int)
    "one burst job admitted" 1
    (List.length (List.filter (( = ) "ok") burst));
  Alcotest.(check int)
    "rest rejected with queue_full" 2
    (List.length (List.filter (( = ) "queue_full") burst));
  (* rejection is a response, not a penalty: the daemon serves on *)
  Alcotest.(check bool) "queue_full counted" true (counter c "serve.queue_full" >= 2);
  health_ok "daemon alive" c;
  Client.close c;
  stop srv

(* ---- coalescing ------------------------------------------------------ *)

let test_coalescing () =
  let srv = start ~workers:1 ~queue:8 () in
  let c = connect srv in
  let before = counter c "serve.coalesced" in
  let gen id =
    request ~id "generate"
      [ ("spec", str "cm multiplier size=4"); ("cif", Json.Bool true) ]
  in
  (* one worker: the sleep pins it, so both identical generates are
     parsed while the leader is still queued — the second must attach
     to the first, not enqueue its own computation *)
  let responses =
    match
      Client.pipeline c
        [
          request ~id:"pin" "sleep" [ ("ms", Json.Int 300) ];
          gen "g1";
          gen "g2";
        ]
    with
    | Ok rs -> rs
    | Error m -> Alcotest.fail m
  in
  let find id =
    match
      List.find_opt (fun r -> id_of r = Some (Json.String id)) responses
    with
    | Some r -> r
    | None -> Alcotest.fail ("no response for " ^ id)
  in
  check_ok "pin" (find "pin");
  let g1 = find "g1" and g2 = find "g2" in
  check_ok "g1" g1;
  check_ok "g2" g2;
  let field r name =
    match Option.bind (Json.member "result" r) (Json.mem_string name) with
    | Some s -> s
    | None -> Alcotest.fail (name ^ " missing")
  in
  (* both riders got the same computation: same key, same bytes *)
  Alcotest.(check string) "same key" (field g1 "key") (field g2 "key");
  Alcotest.(check string) "same cif_sha" (field g1 "cif_sha") (field g2 "cif_sha");
  Alcotest.(check string) "same cif text" (field g1 "cif") (field g2 "cif");
  Alcotest.(check bool)
    "coalesce counted" true
    (counter c "serve.coalesced" > before);
  (* a later identical request is a memory hit, bit-identical *)
  let g3 = rq c (gen "g3") in
  check_ok "g3" g3;
  Alcotest.(check string) "warm source" "memory" (field g3 "source");
  Alcotest.(check string) "warm identical" (field g1 "cif_sha") (field g3 "cif_sha");
  Client.close c;
  stop srv

(* ---- drain ----------------------------------------------------------- *)

let test_drain_completes_inflight () =
  let srv = start ~workers:1 () in
  let c = connect srv in
  (* shutdown lands while the sleep is running: the drain must let the
     job finish and deliver its response before the socket dies *)
  let responses =
    match
      Client.pipeline c
        [
          request ~id:"slow" "sleep" [ ("ms", Json.Int 250) ];
          request ~id:"bye" "shutdown" [];
        ]
    with
    | Ok rs -> rs
    | Error m -> Alcotest.fail m
  in
  let find id =
    List.find_opt (fun r -> id_of r = Some (Json.String id)) responses
  in
  (match find "bye" with
  | Some r -> check_ok "shutdown acknowledged" r
  | None -> Alcotest.fail "no shutdown response");
  (match find "slow" with
  | Some r ->
    check_ok "in-flight job completed" r;
    Alcotest.(check (option int))
      "slept the full duration" (Some 250)
      (Option.bind (Json.member "result" r) (Json.mem_int "slept_ms"))
  | None -> Alcotest.fail "in-flight response lost in drain");
  Client.close c;
  Thread.join srv.s_thread;
  Alcotest.(check bool)
    "socket removed" false
    (Sys.file_exists srv.s_socket);
  (* new work after the drain began would have been refused; here the
     daemon is fully gone, so connecting fails cleanly *)
  match Client.connect srv.s_socket with
  | Error _ -> ()
  | Ok c2 ->
    Client.close c2;
    Alcotest.fail "connected to a drained daemon"

let () =
  Alcotest.run "rsg_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip and rejection" `Quick
            test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "jobspec",
        [ Alcotest.test_case "manifest grammar" `Quick test_jobspec_grammar ] );
      ( "protocol",
        [
          Alcotest.test_case "malformed frames" `Quick test_malformed_frames;
          Alcotest.test_case "oversized request" `Quick test_oversized_request;
          Alcotest.test_case "half-closed socket" `Quick
            test_half_closed_socket;
        ] );
      ( "admission",
        [
          Alcotest.test_case "deadline expired" `Quick test_deadline_expired;
          Alcotest.test_case "queue full" `Quick test_queue_full;
        ] );
      ( "coalesce",
        [ Alcotest.test_case "identical generates share" `Quick test_coalescing ]
      );
      ( "drain",
        [
          Alcotest.test_case "in-flight completes" `Quick
            test_drain_completes_inflight;
        ] );
    ]

(* Tests for lib/lint: the design-file analyzer (scoping, arity, array
   shape — Chapter 4), the graph analyzer (spanning tree, ambiguity,
   cycle consistency — Chapter 3), DRC-style mutation self-checks
   (each seeded defect yields exactly its diagnostic code) and the
   randomized lint-vs-Expand agreement property. *)

open Rsg_geom
open Rsg_layout
open Rsg_core
open Rsg_lint

let codes (r : Diag.report) = Diag.codes r

let check_codes what expected r =
  Alcotest.(check (list string))
    (Printf.sprintf "%s -> %s" what (String.concat "," expected))
    expected (codes r)

(* ------------------------------------------------------------------ *)
(* Design-file front end                                               *)

(* A deliberately warning-free grid design (the same shape as the
   test_lang codegen property), linted against a one-cell sample. *)
let grid_design =
  "(macro mrow (size)\n\
  \  (locals r. nxt)\n\
  \  (mk_instance nxt basiccell)\n\
  \  (assign r.1 nxt)\n\
  \  (do (i 2 (+ i 1) (> i size))\n\
  \    (mk_instance nxt basiccell)\n\
  \    (assign r.i nxt)\n\
  \    (connect r.(- i 1) r.i 1)))\n\
   (assign g.1 (mrow 3))\n\
   (do (j 2 (+ j 1) (> j 3))\n\
  \  (assign g.j (mrow 3))\n\
  \  (connect (subcell g.(- j 1) r.1) (subcell g.j r.1) 2))\n\
   (mk_cell \"grid\" (subcell g.1 r.1))"

let grid_config =
  { Design_lint.globals = []; cells = [ "basiccell" ]; env_known = true }

let lint_grid ?(cfg = grid_config) src = Design_lint.check_string cfg src

let test_clean_design () =
  let r = lint_grid grid_design in
  check_codes "clean grid design" [] r;
  Alcotest.(check bool) "clean" true (Diag.clean r);
  Alcotest.(check bool) "checked some forms" true (r.Diag.r_checked > 0)

(* DRC-style mutation self-checks: seed exactly one defect, expect
   exactly its code and nothing else. *)
let test_mutation_unbound () =
  check_codes "seeded unbound variable" [ "L101" ]
    (lint_grid (grid_design ^ "\n(print zz77)"))

let test_mutation_arity () =
  check_codes "seeded arity mismatch" [ "L104" ]
    (lint_grid (grid_design ^ "\n(mrow 1 2)"))

let test_mutation_unknown_callee () =
  check_codes "seeded unknown macro" [ "L108" ]
    (lint_grid (grid_design ^ "\n(mnosuch 1)"))

let test_mutation_scalar_array () =
  let seeded =
    Str.replace_first (Str.regexp_string "(assign r.1 nxt)")
      "(assign r.1 nxt)\n  (assign nxt.3 1)" grid_design
  in
  check_codes "seeded scalar-indexed" [ "L105" ] (lint_grid seeded)

let test_mutation_unused_local () =
  let seeded =
    Str.replace_first (Str.regexp_string "(locals r. nxt)")
      "(locals r. nxt dead)" grid_design
  in
  check_codes "seeded unused local" [ "L102" ] (lint_grid seeded)

let test_mutation_duplicate_local () =
  let seeded =
    Str.replace_first (Str.regexp_string "(locals r. nxt)")
      "(locals r. nxt nxt)" grid_design
  in
  check_codes "seeded duplicate local" [ "L106" ] (lint_grid seeded)

let test_mutation_subcell_binding () =
  check_codes "seeded unknown subcell binding" [ "L107" ]
    (lint_grid (grid_design ^ "\n(print (subcell (mrow 2) nosuch))"))

let test_mutation_unused_macro () =
  check_codes "seeded dead macro" [ "L103" ]
    (lint_grid (grid_design ^ "\n(macro mdead (x) (print x))"))

let test_mutation_syntax_error () =
  check_codes "seeded parse error" [ "L100" ]
    (lint_grid (grid_design ^ "\n(assign"))

let test_unbound_downgrades_without_params () =
  (* the same unresolved name is a warning when the parameter
     environment is unknown — it may be supplied by a parameter file *)
  let cfg = Design_lint.default_config in
  let r = Design_lint.check_string cfg "(print somename)" in
  check_codes "unknown env" [ "L101" ] r;
  Alcotest.(check bool) "still clean (warning only)" true (Diag.clean r);
  let r = Design_lint.check_string grid_config "(print somename)" in
  Alcotest.(check bool) "error with known env" false (Diag.clean r)

let test_diag_locations () =
  let r =
    Design_lint.check_string ~file:"t.def" grid_config
      "(assign x 1)\n(print x)\n(print zzz)"
  in
  match Diag.errors r with
  | [ d ] ->
    Alcotest.(check (option string)) "file" (Some "t.def") d.Diag.file;
    Alcotest.(check (option int)) "line" (Some 3) d.Diag.line
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds)

(* The shipped generators' design files lint clean against their own
   parameter files and samples. *)
let test_mult_design_clean () =
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let params =
    Rsg_lang.Param.parse (Rsg_mult.Sample_lib.param_file ~xsize:4 ~ysize:4)
  in
  let cfg =
    Design_lint.config_of_params ~cells:(Db.names sample.Sample.db) params
  in
  let r = Design_lint.check_string cfg Rsg_mult.Design_file.text in
  if not (Diag.clean r) then
    Alcotest.failf "multiplier design not clean:@\n%a" Diag.pp_report r;
  check_codes "mult design" [] r

let test_pla_design_clean () =
  let sample, _ = Rsg_pla.Pla_cells.build () in
  let params =
    Rsg_lang.Param.parse
      (Rsg_pla.Pla_design_file.param_file ~ninputs:3 ~noutputs:2 ~nterms:4
         ~name:"pla")
  in
  let cfg =
    Design_lint.config_of_params ~cells:(Db.names sample.Sample.db) params
  in
  (* lits/outs are host-installed globals (delayed binding) *)
  let cfg = { cfg with Design_lint.globals = "lits" :: "outs" :: cfg.Design_lint.globals } in
  let r = Design_lint.check_string cfg Rsg_pla.Pla_design_file.text in
  if not (Diag.clean r) then
    Alcotest.failf "PLA design not clean:@\n%a" Diag.pp_report r;
  check_codes "pla design" [] r

let test_json () =
  let r = lint_grid (grid_design ^ "\n(print zz77)") in
  let json = Diag.report_to_json r in
  Alcotest.(check bool) "json mentions code" true
    (Str.string_match (Str.regexp ".*\"code\":\"L101\".*") json 0);
  Alcotest.(check bool) "json counts one error" true
    (Str.string_match (Str.regexp ".*\"errors\":1.*") json 0)

(* ------------------------------------------------------------------ *)
(* Graph front end                                                     *)

let lint_graph ?root tbl nodes = Graph_lint.check ?root tbl nodes

(* A self-inverse same-celltype interface (I = I^-1): south at
   (10, 0).  Chains built with it have no direction-sensitive edges,
   so the baseline is entirely diagnostic-free. *)
let self_inverse = Interface.make (Vec.make 10 0) Orient.south

let chain3 () =
  let cc = Cell.create "cc" in
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"cc" ~into:"cc" ~index:1 self_inverse;
  let gen = Graph.generator () in
  let a = Graph.mk_instance ~gen cc in
  let b = Graph.mk_instance ~gen cc in
  let c = Graph.mk_instance ~gen cc in
  Graph.connect a b 1;
  Graph.connect b c 1;
  (tbl, cc, a, b, c)

let test_graph_clean () =
  let tbl, _, a, b, c = chain3 () in
  check_codes "clean chain" [] (lint_graph tbl [ a; b; c ])

let test_graph_ambiguity () =
  (* same chain, but with a direction-sensitive (non-self-inverse)
     interface: exactly L203, once per (celltype, index) *)
  let cc = Cell.create "cc2" in
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"cc2" ~into:"cc2" ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  let gen = Graph.generator () in
  let a = Graph.mk_instance ~gen cc in
  let b = Graph.mk_instance ~gen cc in
  let c = Graph.mk_instance ~gen cc in
  Graph.connect a b 1;
  Graph.connect b c 1;
  check_codes "undirected-ambiguous edge" [ "L203" ]
    (lint_graph tbl [ a; b; c ])

let distinct_chain () =
  let ca = Cell.create "A" and cb = Cell.create "B" and cc = Cell.create "C" in
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"A" ~into:"B" ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  Interface_table.declare tbl ~from:"B" ~into:"C" ~index:2
    (Interface.make (Vec.make 0 12) Orient.north);
  let gen = Graph.generator () in
  let a = Graph.mk_instance ~gen ca in
  let b = Graph.mk_instance ~gen cb in
  let c = Graph.mk_instance ~gen cc in
  Graph.connect a b 1;
  Graph.connect b c 2;
  (tbl, gen, a, b, c)

let test_graph_redundant_consistent () =
  let tbl, _, a, b, c = distinct_chain () in
  (* the placement the tree implies for c, seen from a *)
  let tb = Interface.place ~a:Transform.identity
      (Option.get (Interface_table.find tbl ~from:"A" ~into:"B" ~index:1))
  in
  let tc = Interface.place ~a:tb
      (Option.get (Interface_table.find tbl ~from:"B" ~into:"C" ~index:2))
  in
  Interface_table.declare tbl ~from:"A" ~into:"C" ~index:3
    (Interface.of_placements ~a:Transform.identity ~b:tc);
  Graph.connect a c 3;
  ignore b;
  check_codes "consistent redundant edge" [ "L202" ] (lint_graph tbl [ a; b; c ])

let test_graph_overconstrained () =
  let tbl, _, a, b, c = distinct_chain () in
  Interface_table.declare tbl ~from:"A" ~into:"C" ~index:3
    (Interface.make (Vec.make 1 1) Orient.north);
  Graph.connect a c 3;
  ignore b;
  check_codes "over-constrained cycle" [ "L205" ] (lint_graph tbl [ a; b; c ])

let test_graph_missing_interface () =
  let tbl, _, a, b, c = distinct_chain () in
  Graph.connect a c 9;
  ignore b;
  check_codes "undeclared interface" [ "L204" ] (lint_graph tbl [ a; b; c ])

let test_graph_unreachable () =
  let tbl, gen, a, b, c = distinct_chain () in
  let d = Graph.mk_instance ~gen (Cell.create "D") in
  check_codes "unreachable node" [ "L201" ] (lint_graph tbl [ a; b; c; d ])

let test_graph_duplicate_edge () =
  let tbl, _, a, b, c = distinct_chain () in
  Graph.connect a b 1;
  ignore c;
  check_codes "duplicate edge" [ "L206" ] (lint_graph tbl [ a; b; c ])

let test_graph_does_not_place () =
  let tbl, _, a, b, c = distinct_chain () in
  ignore (lint_graph tbl [ a; b; c ]);
  List.iter
    (fun (n : Graph.node) ->
      Alcotest.(check bool) "placement untouched" true
        (n.Graph.placement = None))
    [ a; b; c ]

let test_graph_dead_interface () =
  let tbl, _, a, b, c = distinct_chain () in
  (* baseline: every declared interface is referenced by an edge *)
  check_codes "all interfaces referenced" [] (lint_graph tbl [ a; b; c ]);
  (* mutation self-check: declare one more, reference it nowhere ->
     exactly one L208, as a warning naming the dead declaration *)
  Interface_table.declare tbl ~from:"A" ~into:"C" ~index:7
    (Interface.make (Vec.make 3 3) Orient.north);
  let r = lint_graph tbl [ a; b; c ] in
  check_codes "seeded dead interface" [ "L208" ] r;
  match r.Diag.r_diags with
  | [ d ] ->
      Alcotest.(check bool) "names the pair and index" true
        (Str.string_match
           (Str.regexp ".*interface 7 between A and C.*")
           d.Diag.message 0);
      Alcotest.(check bool) "a warning, not an error" true
        (d.Diag.severity = Diag.Warning)
  | _ -> Alcotest.fail "expected exactly one diagnostic"

(* ------------------------------------------------------------------ *)
(* Position excerpts                                                   *)

(* Six lines, varied lengths, trailing newline (which must not count
   as a seventh line). *)
let excerpt_text = "alpha\nbravo\ncharlie\ndelta\necho\nfoxtrot\n"

let span s_line s_col s_end_line s_end_col =
  { Diag.s_line; s_col; s_end_line; s_end_col }

let check_excerpt what expected s =
  Alcotest.(check string) what expected (Diag.excerpt ~text:excerpt_text s)

let test_excerpt_zero_width () =
  check_excerpt "zero-width span renders one caret"
    "   1 | alpha\n     |   ^"
    (span 1 2 1 2)

let test_excerpt_past_eof () =
  check_excerpt "position past the end is reported, not raised"
    "   9 | <past end of input (6 lines)>"
    (span 9 0 9 4);
  Alcotest.(check string) "empty text counts zero lines"
    "   1 | <past end of input (0 lines)>"
    (Diag.excerpt ~text:"" (span 1 0 1 0))

let test_excerpt_multi_line () =
  check_excerpt "long spans cap at four lines with a tail count"
    ("   1 | alpha\n     | ^^^^^\n\
     \   2 | bravo\n     | ^^^^^\n\
     \   3 | charlie\n     | ^^^^^^^\n\
     \   4 | delta\n     | ^^^^^\n\
     \     | ... 2 more lines")
    (span 1 0 6 3)

let test_excerpt_column_clamp () =
  (* columns beyond the line collapse to a caret at its end *)
  check_excerpt "columns clamp to the line length"
    "   5 | echo\n     |     ^"
    (span 5 10 5 12)

let test_excerpt_inverted () =
  (* an end before the start collapses to the start position *)
  check_excerpt "inverted spans collapse to the start"
    "   3 | charlie\n     |   ^"
    (span 3 2 2 0)

(* ------------------------------------------------------------------ *)
(* Lint vs Expand agreement                                            *)

(* Random connectivity graphs over distinct celltypes: a random
   spanning tree plus random extra edges, with each edge's interface
   randomly declared or left undeclared.  Lint must report L204 iff
   collect-mode expansion reports a Missing defect, and L205 iff it
   reports a Mismatch. *)
let prop_lint_expand_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"lint vs Expand.run collect agreement"
       QCheck.(triple (int_range 3 8) (int_range 0 4) small_int)
       (fun (n, extras, seed) ->
         let rand = Random.State.make [| seed; n; extras |] in
         let cells = Array.init n (fun i -> Cell.create (Printf.sprintf "t%d" i)) in
         let tbl = Interface_table.create () in
         let gen = Graph.generator () in
         let nodes = Array.map (fun c -> Graph.mk_instance ~gen c) cells in
         let orients = Array.of_list Orient.all in
         let rand_iface () =
           Interface.make
             (Vec.make
                (Random.State.int rand 41 - 20)
                (Random.State.int rand 41 - 20))
             orients.(Random.State.int rand (Array.length orients))
         in
         let edge j k index =
           Graph.connect nodes.(j) nodes.(k) index;
           if Random.State.float rand 1.0 < 0.8 then
             Interface_table.declare tbl
               ~from:cells.(j).Cell.cname ~into:cells.(k).Cell.cname ~index
               (rand_iface ())
         in
         for i = 1 to n - 1 do
           edge (Random.State.int rand i) i i
         done;
         for e = 0 to extras - 1 do
           let j = Random.State.int rand n in
           let k = Random.State.int rand n in
           if j <> k then edge j k (n + e)
         done;
         let node_list = Array.to_list nodes in
         let lint = Graph_lint.check tbl node_list in
         let lint_codes = codes lint in
         let rep = Expand.run ~mode:`Collect tbl nodes.(0) in
         let has_missing =
           List.exists
             (function Expand.Missing _ -> true | _ -> false)
             rep.Expand.r_defects
         and has_mismatch =
           List.exists
             (function Expand.Mismatch _ -> true | _ -> false)
             rep.Expand.r_defects
         in
         Bool.equal (List.mem "L204" lint_codes) has_missing
         && Bool.equal (List.mem "L205" lint_codes) has_mismatch
         && Array.for_all (fun (n : Graph.node) -> n.Graph.placement = None)
              nodes))

(* ------------------------------------------------------------------ *)
(* Typed failure conversion                                            *)

let test_of_exn () =
  let code e =
    match Diag.of_exn e with
    | Some d -> d.Diag.code
    | None -> "none"
  in
  Alcotest.(check string) "duplicate cell" "L109"
    (code (Db.Duplicate_cell "x"));
  Alcotest.(check string) "instance cycle" "L110"
    (code (Cell.Instance_cycle "x"));
  Alcotest.(check string) "table conflict" "L207"
    (code (Interface_table.Conflict { from = "a"; into = "b"; index = 1 }));
  Alcotest.(check string) "parse error" "L100"
    (code (Rsg_lang.Sexp.Parse_error { line = 3; message = "boom" }));
  Alcotest.(check string) "other exceptions pass" "none" (code Exit);
  match Diag.of_exn (Rsg_lang.Sexp.Parse_error { line = 3; message = "boom" }) with
  | Some d -> Alcotest.(check (option int)) "line kept" (Some 3) d.Diag.line
  | None -> Alcotest.fail "expected a diagnostic"

let () =
  Alcotest.run "rsg_lint"
    [ ("design",
       [ Alcotest.test_case "clean grid" `Quick test_clean_design;
         Alcotest.test_case "mult design clean" `Quick test_mult_design_clean;
         Alcotest.test_case "pla design clean" `Quick test_pla_design_clean;
         Alcotest.test_case "unknown env downgrade" `Quick
           test_unbound_downgrades_without_params;
         Alcotest.test_case "locations" `Quick test_diag_locations;
         Alcotest.test_case "json" `Quick test_json ]);
      ("design-mutations",
       [ Alcotest.test_case "unbound (L101)" `Quick test_mutation_unbound;
         Alcotest.test_case "unused local (L102)" `Quick
           test_mutation_unused_local;
         Alcotest.test_case "dead macro (L103)" `Quick
           test_mutation_unused_macro;
         Alcotest.test_case "arity (L104)" `Quick test_mutation_arity;
         Alcotest.test_case "scalar/array (L105)" `Quick
           test_mutation_scalar_array;
         Alcotest.test_case "duplicate local (L106)" `Quick
           test_mutation_duplicate_local;
         Alcotest.test_case "subcell binding (L107)" `Quick
           test_mutation_subcell_binding;
         Alcotest.test_case "unknown callee (L108)" `Quick
           test_mutation_unknown_callee;
         Alcotest.test_case "syntax (L100)" `Quick test_mutation_syntax_error ]);
      ("graph",
       [ Alcotest.test_case "clean chain" `Quick test_graph_clean;
         Alcotest.test_case "ambiguity (L203)" `Quick test_graph_ambiguity;
         Alcotest.test_case "redundant (L202)" `Quick
           test_graph_redundant_consistent;
         Alcotest.test_case "over-constrained (L205)" `Quick
           test_graph_overconstrained;
         Alcotest.test_case "missing interface (L204)" `Quick
           test_graph_missing_interface;
         Alcotest.test_case "unreachable (L201)" `Quick test_graph_unreachable;
         Alcotest.test_case "duplicate edge (L206)" `Quick
           test_graph_duplicate_edge;
         Alcotest.test_case "lint never places" `Quick
           test_graph_does_not_place;
         Alcotest.test_case "dead interface (L208)" `Quick
           test_graph_dead_interface ]);
      ("excerpt",
       [ Alcotest.test_case "zero width" `Quick test_excerpt_zero_width;
         Alcotest.test_case "past eof" `Quick test_excerpt_past_eof;
         Alcotest.test_case "multi-line cap" `Quick test_excerpt_multi_line;
         Alcotest.test_case "column clamp" `Quick test_excerpt_column_clamp;
         Alcotest.test_case "inverted span" `Quick test_excerpt_inverted ]);
      ("agreement", [ prop_lint_expand_agreement ]);
      ("exceptions", [ Alcotest.test_case "of_exn" `Quick test_of_exn ]) ]

(* Tests for the PLA subsystem (section 1.2.2): truth tables, the PLA
   and decoder generators with extraction-based verification, and the
   HPLA sample comparison. *)

open Rsg_layout
open Rsg_pla

(* ------------------------------------------------------------------ *)
(* Truth tables                                                       *)

let test_tt_parse_roundtrip () =
  let rows = [ ("10-", "10"); ("0-1", "01"); ("111", "11") ] in
  let tt = Truth_table.of_strings rows in
  Alcotest.(check int) "inputs" 3 tt.Truth_table.n_inputs;
  Alcotest.(check int) "outputs" 2 tt.Truth_table.n_outputs;
  Alcotest.(check (list (pair string string))) "round trip" rows
    (Truth_table.to_strings tt)

let test_tt_eval () =
  let tt = Truth_table.of_strings [ ("10", "10"); ("01", "01"); ("11", "11") ] in
  (* inputs little-endian: bit 0 is the first column *)
  Alcotest.(check int) "in=1 fires 10" 1 (Truth_table.eval_int tt 1);
  Alcotest.(check int) "in=2 fires 01" 2 (Truth_table.eval_int tt 2);
  Alcotest.(check int) "in=3 fires 11" 3 (Truth_table.eval_int tt 3);
  Alcotest.(check int) "in=0 fires none" 0 (Truth_table.eval_int tt 0)

let test_tt_dont_care () =
  let tt = Truth_table.of_strings [ ("-1", "1") ] in
  Alcotest.(check int) "fires on bit 1 alone" 1 (Truth_table.eval_int tt 2);
  Alcotest.(check int) "fires with both" 1 (Truth_table.eval_int tt 3);
  Alcotest.(check int) "silent without bit 1" 0 (Truth_table.eval_int tt 1)

let test_tt_crosspoints () =
  let tt = Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
  Alcotest.(check (pair int int)) "crosspoints" (4, 2)
    (Truth_table.n_crosspoints tt)

let test_tt_errors () =
  let raises rows =
    try ignore (Truth_table.of_strings rows); false
    with Truth_table.Malformed _ -> true
  in
  Alcotest.(check bool) "empty" true (raises []);
  Alcotest.(check bool) "ragged" true (raises [ ("10", "1"); ("1", "1") ]);
  Alcotest.(check bool) "bad char" true (raises [ ("1z", "1") ])

let test_tt_equal_semantics () =
  (* different terms, same function *)
  let a = Truth_table.of_strings [ ("1-", "1") ] in
  let b = Truth_table.of_strings [ ("10", "1"); ("11", "1") ] in
  Alcotest.(check bool) "semantically equal" true (Truth_table.equal a b);
  let c = Truth_table.of_strings [ ("01", "1") ] in
  Alcotest.(check bool) "different" false (Truth_table.equal a c)

(* ------------------------------------------------------------------ *)
(* PLA generation                                                     *)

let demo_tt () =
  Truth_table.of_strings [ ("10-", "10"); ("0-1", "01"); ("111", "11") ]

let test_pla_generate_verify () =
  let g = Gen.generate (demo_tt ()) in
  Alcotest.(check bool) "extraction matches personality" true (Gen.verify g)

let test_pla_structure () =
  let tt = demo_tt () in
  let g = Gen.generate tt in
  let counts = Gen.stats g in
  let get name = try List.assoc name counts with Not_found -> 0 in
  (* 2 columns per input x 3 terms *)
  Alcotest.(check int) "and plane" (6 * 3) (get Pla_cells.and_sq);
  Alcotest.(check int) "connect column" 3 (get Pla_cells.connect_ao);
  Alcotest.(check int) "or plane" (2 * 3) (get Pla_cells.or_sq);
  Alcotest.(check int) "input buffers" 3 (get Pla_cells.inbuf);
  Alcotest.(check int) "output buffers" 2 (get Pla_cells.outbuf);
  let and_x, or_x = Truth_table.n_crosspoints tt in
  Alcotest.(check int) "and crosspoints" and_x (get Pla_cells.and_cross);
  Alcotest.(check int) "or crosspoints" or_x (get Pla_cells.or_cross)

let test_pla_cif () =
  let g = Gen.generate (demo_tt ()) in
  let r = Cif.of_string (Cif.to_string g.Gen.cell) in
  Alcotest.(check bool) "cif round trip" true
    (Cif.roundtrip_equal g.Gen.cell (Db.find_exn r.Cif.db g.Gen.cell.Cell.cname))

let prop_random_plas =
  let gen_tt =
    QCheck.make
      (QCheck.Gen.map
         (fun rows ->
           let rows =
             List.map
               (fun (ls, os) ->
                 ( String.init 3 (fun i ->
                       match (ls lsr (2 * i)) land 3 with
                       | 0 -> '0'
                       | 1 -> '1'
                       | _ -> '-'),
                   String.init 2 (fun i ->
                       if (os lsr i) land 1 = 1 then '1' else '0') ))
               rows
           in
           Truth_table.of_strings rows)
         QCheck.Gen.(list_size (int_range 1 6) (pair (int_bound 63) (int_range 1 3))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random PLAs verify by extraction" gen_tt
       (fun tt -> Gen.verify (Gen.generate tt)))

(* ------------------------------------------------------------------ *)
(* Decoder from the same sample (section 1.2.2)                       *)

let test_decoder () =
  let d = Gen.generate_decoder 3 in
  Alcotest.(check bool) "extraction verifies" true (Gen.verify d);
  for v = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "input %d" v)
      (1 lsl v)
      (Truth_table.eval_int d.Gen.table v)
  done;
  (* no OR plane in a decoder *)
  let counts = Gen.stats d in
  Alcotest.(check bool) "no or plane" true
    (not (List.mem_assoc Pla_cells.or_sq counts));
  Alcotest.(check int) "8 minterm rows x 6 columns" 48
    (List.assoc Pla_cells.and_sq counts)

let test_decoder_and_pla_share_sample () =
  let sample, _ = Pla_cells.build () in
  let p = Gen.generate ~sample (demo_tt ()) in
  let d = Gen.generate_decoder ~sample 2 in
  Alcotest.(check bool) "pla ok" true (Gen.verify p);
  Alcotest.(check bool) "decoder ok" true (Gen.verify d)

(* ------------------------------------------------------------------ *)
(* HPLA comparison (E5)                                               *)

let test_hpla_redundancy () =
  let c = Hpla.compare_samples () in
  Alcotest.(check int) "hpla instances" 22 c.Hpla.hpla_instances;
  Alcotest.(check int) "hpla declarations" 26 c.Hpla.hpla_declarations;
  Alcotest.(check int) "hpla redundant" 16 c.Hpla.hpla_duplicates;
  Alcotest.(check int) "rsg declarations" 11 c.Hpla.rsg_declarations;
  Alcotest.(check int) "rsg redundant" 0 c.Hpla.rsg_duplicates;
  Alcotest.(check bool) "hpla sample is larger" true
    (c.Hpla.hpla_declarations > c.Hpla.rsg_declarations)

let test_hpla_same_layout () =
  Alcotest.(check bool) "both samples generate the same PLA" true
    (Hpla.generates_same_pla
       (Truth_table.of_strings [ ("10", "10"); ("01", "01") ]))

(* ------------------------------------------------------------------ *)
(* PLA design file (delayed binding of the encoding)                  *)

let test_pla_design_file_equivalence () =
  let tt = demo_tt () in
  let native = Gen.generate tt in
  let _, interpreted = Pla_design_file.generate tt in
  Alcotest.(check bool) "pla design file == native" true
    (Cif.roundtrip_equal native.Gen.cell interpreted)

let test_decoder_design_file_equivalence () =
  let native = Gen.generate_decoder 3 in
  let _, interpreted = Pla_design_file.generate_decoder 3 in
  Alcotest.(check bool) "decoder design file == native" true
    (Cif.roundtrip_equal native.Gen.cell interpreted)

let prop_design_file_random =
  let gen_tt =
    QCheck.make
      (QCheck.Gen.map
         (fun rows ->
           Truth_table.of_strings
             (List.map
                (fun (ls, os) ->
                  ( String.init 2 (fun i ->
                        match (ls lsr (2 * i)) land 3 with
                        | 0 -> '0'
                        | 1 -> '1'
                        | _ -> '-'),
                    String.init 2 (fun i ->
                        if (os lsr i) land 1 = 1 then '1' else '0') ))
                rows))
         QCheck.Gen.(
           list_size (int_range 1 4) (pair (int_bound 15) (int_range 1 3))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"random tables: design file == native"
       gen_tt (fun tt ->
         let native = Gen.generate tt in
         let _, interpreted = Pla_design_file.generate tt in
         Cif.roundtrip_equal native.Gen.cell interpreted))

(* ------------------------------------------------------------------ *)
(* Folding (section 1.2.3)                                            *)

let foldable_tt () =
  (* inputs 0/2 and 1/3 never share a product term *)
  Truth_table.of_strings
    [ ("10--", "10"); ("01--", "01"); ("--11", "11"); ("--01", "10") ]

let test_fold_plan () =
  let tt = foldable_tt () in
  let f = Folding.plan tt in
  Alcotest.(check int) "two pairs" 2 (List.length f.Folding.pairs);
  Alcotest.(check int) "no singles" 0 (List.length f.Folding.singles);
  Alcotest.(check int) "two slots" 2 (Folding.n_slots f);
  Alcotest.(check int) "four columns saved" 4 (Folding.columns_saved tt f);
  (* paired inputs really are row-disjoint *)
  List.iter
    (fun (i, j) ->
      List.iteri
        (fun r (term : Truth_table.term) ->
          ignore r;
          Alcotest.(check bool) "disjoint" false
            (term.Truth_table.lits.(i) <> Truth_table.X
            && term.Truth_table.lits.(j) <> Truth_table.X))
        tt.Truth_table.terms)
    f.Folding.pairs

let test_fold_verify_and_shrink () =
  let tt = foldable_tt () in
  let folded = Folding.generate tt in
  Alcotest.(check bool) "folded extraction verifies" true
    (Folding.verify folded);
  let straight = Gen.generate tt in
  let width c =
    match (Flatten.stats c).Flatten.bbox with
    | Some b -> Rsg_geom.Box.width b
    | None -> 0
  in
  Alcotest.(check bool) "folded is narrower" true
    (width folded.Folding.cell < width straight.Gen.cell);
  (* same function *)
  Alcotest.(check bool) "same personality" true
    (Truth_table.equal (Folding.read_back folded) tt)

let test_fold_unfoldable () =
  let tt = Truth_table.of_strings [ ("111", "1"); ("000", "1") ] in
  let f = Folding.plan tt in
  Alcotest.(check int) "no pairs" 0 (List.length f.Folding.pairs);
  let g = Folding.generate tt in
  Alcotest.(check bool) "still verifies" true (Folding.verify g)

let test_fold_needs_row_reorder () =
  (* inputs 0 and 1 are row-disjoint but interleaved: folding must
     reorder rows *)
  let tt =
    Truth_table.of_strings [ ("1-", "1"); ("-1", "1"); ("0-", "1"); ("-0", "1") ]
  in
  let f = Folding.plan tt in
  Alcotest.(check int) "one pair" 1 (List.length f.Folding.pairs);
  Alcotest.(check bool) "rows permuted" true
    (f.Folding.row_order <> [| 0; 1; 2; 3 |]);
  let g = Folding.generate tt in
  Alcotest.(check bool) "verifies after reorder" true (Folding.verify g)

let prop_fold_random =
  let gen_tt =
    QCheck.make
      (QCheck.Gen.map
         (fun rows ->
           Truth_table.of_strings
             (List.map
                (fun (ls, os) ->
                  ( String.init 4 (fun i ->
                        match (ls lsr (2 * i)) land 3 with
                        | 0 -> '0'
                        | 1 -> '1'
                        | _ -> '-'),
                    String.init 2 (fun i ->
                        if (os lsr i) land 1 = 1 then '1' else '0') ))
                rows))
         QCheck.Gen.(
           list_size (int_range 1 6) (pair (int_bound 255) (int_range 1 3))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"random tables fold and verify" gen_tt
       (fun tt -> Folding.verify (Folding.generate tt)))

(* ------------------------------------------------------------------ *)
(* ROM                                                                *)

let test_rom_roundtrip () =
  let contents = [| 0xA; 0x3; 0xF; 0x0; 0x5; 0xC; 0x9; 0x6 |] in
  let rom = Rom.generate ~word_bits:4 contents in
  Alcotest.(check int) "address bits" 3 rom.Rom.address_bits;
  Alcotest.(check bool) "verified via layout" true (Rom.verify rom);
  Array.iteri
    (fun addr w ->
      Alcotest.(check int) (Printf.sprintf "word %d" addr) w
        (Rom.read_word rom addr))
    contents;
  Alcotest.(check (array int)) "dump equals contents" contents (Rom.dump rom)

let test_rom_errors () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non power of two" true
    (raises (fun () -> Rom.generate ~word_bits:4 [| 1; 2; 3 |]));
  Alcotest.(check bool) "word too wide" true
    (raises (fun () -> Rom.generate ~word_bits:2 [| 0; 5 |]));
  Alcotest.(check bool) "single word" true
    (raises (fun () -> Rom.generate ~word_bits:2 [| 1 |]));
  let rom = Rom.generate ~word_bits:2 [| 1; 2 |] in
  Alcotest.(check bool) "address out of range" true
    (raises (fun () -> Rom.read_word rom 5))

let prop_rom_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"random ROMs verify"
       QCheck.(array_of_size (QCheck.Gen.return 8) (int_bound 15))
       (fun contents -> Rom.verify (Rom.generate ~word_bits:4 contents)))

(* ------------------------------------------------------------------ *)
(* Weinberger arrays (section 1.2.1)                                  *)

let test_weinberger_eval () =
  (* inverter *)
  let v = Weinberger.eval Weinberger.inverter [| true |] in
  Alcotest.(check bool) "not true" false v.(1);
  let v = Weinberger.eval Weinberger.inverter [| false |] in
  Alcotest.(check bool) "not false" true v.(1);
  (* the classic 4-NOR equivalence gate: g0 = nor(a,b);
     g1 = nor(a,g0); g2 = nor(b,g0); g3 = nor(g1,g2) = (a = b) *)
  let xnor =
    { Weinberger.n_primary = 2; gates = [| [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 3; 4 ] |] }
  in
  List.iter
    (fun (a, b) ->
      let v = Weinberger.eval xnor [| a; b |] in
      Alcotest.(check bool)
        (Printf.sprintf "%b xnor %b" a b)
        (a = b)
        v.(Weinberger.n_signals xnor - 1))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_weinberger_validate () =
  let raises p =
    try Weinberger.validate p; false with Weinberger.Bad_program _ -> true
  in
  Alcotest.(check bool) "forward reference" true
    (raises { Weinberger.n_primary = 1; gates = [| [ 2 ]; [ 0 ] |] });
  Alcotest.(check bool) "self reference" true
    (raises { Weinberger.n_primary = 1; gates = [| [ 1 ] |] });
  Alcotest.(check bool) "empty gate" true
    (raises { Weinberger.n_primary = 1; gates = [| [] |] });
  Alcotest.(check bool) "no primaries" true
    (raises { Weinberger.n_primary = 0; gates = [| [ 0 ] |] })

let test_weinberger_layout () =
  let xnor =
    { Weinberger.n_primary = 2; gates = [| [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 3; 4 ] |] }
  in
  let t = Weinberger.generate xnor in
  Alcotest.(check bool) "extraction verifies" true (Weinberger.verify t);
  (* 4 gate columns x 6 signal rows *)
  let st = Flatten.stats t.Weinberger.cell in
  Alcotest.(check int) "array squares" 24
    (List.assoc "wein-col" st.Flatten.by_cell)

let test_weinberger_compile_tt () =
  (* the NOR compilation evaluates to exactly the truth table *)
  List.iter
    (fun rows ->
      let tt = Truth_table.of_strings rows in
      let prog, outs = Weinberger.of_truth_table tt in
      for v = 0 to (1 lsl tt.Truth_table.n_inputs) - 1 do
        let primaries =
          Array.init tt.Truth_table.n_inputs (fun i -> v land (1 lsl i) <> 0)
        in
        let got = Weinberger.eval_outputs prog outs primaries in
        let want =
          let o = Truth_table.eval_int tt v in
          Array.init tt.Truth_table.n_outputs (fun k -> o land (1 lsl k) <> 0)
        in
        Alcotest.(check bool)
          (Printf.sprintf "input %d" v)
          true (got = want)
      done)
    [ [ ("10-", "10"); ("0-1", "01"); ("111", "11") ];
      [ ("---", "1") ];               (* all don't-care term *)
      [ ("11", "10") ];               (* an output never driven *)
      [ ("1", "1"); ("0", "1") ] ]

let prop_weinberger_compile_random =
  let gen_tt =
    QCheck.make
      (QCheck.Gen.map
         (fun rows ->
           Truth_table.of_strings
             (List.map
                (fun (ls, os) ->
                  ( String.init 3 (fun i ->
                        match (ls lsr (2 * i)) land 3 with
                        | 0 -> '0'
                        | 1 -> '1'
                        | _ -> '-'),
                    String.init 2 (fun i ->
                        if (os lsr i) land 1 = 1 then '1' else '0') ))
                rows))
         QCheck.Gen.(
           list_size (int_range 1 5) (pair (int_bound 63) (int_range 0 3))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"random tables compile to NOR logic"
       gen_tt (fun tt ->
         let prog, outs = Weinberger.of_truth_table tt in
         let ok = ref true in
         for v = 0 to 7 do
           let primaries = Array.init 3 (fun i -> v land (1 lsl i) <> 0) in
           let got = Weinberger.eval_outputs prog outs primaries in
           let o = Truth_table.eval_int tt v in
           let want = Array.init 2 (fun k -> o land (1 lsl k) <> 0) in
           if got <> want then ok := false
         done;
         !ok))

let prop_weinberger_random =
  let gen_prog =
    QCheck.make
      QCheck.Gen.(
        let* n_primary = int_range 1 3 in
        let* n_gates = int_range 1 5 in
        let* gates =
          let gate k =
            list_size (int_range 1 (min 3 (n_primary + k)))
              (int_range 0 (n_primary + k - 1))
          in
          (* build gate lists sequentially so ranges respect k *)
          let rec go k acc =
            if k = n_gates then return (List.rev acc)
            else
              let* g = gate k in
              go (k + 1) (g :: acc)
          in
          go 0 []
        in
        return { Weinberger.n_primary; gates = Array.of_list gates })
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"random NOR programs verify" gen_prog
       (fun p -> Weinberger.verify (Weinberger.generate p)))

let () =
  Alcotest.run "rsg_pla"
    [ ("truth-table",
       [ Alcotest.test_case "parse round trip" `Quick test_tt_parse_roundtrip;
         Alcotest.test_case "eval" `Quick test_tt_eval;
         Alcotest.test_case "don't care" `Quick test_tt_dont_care;
         Alcotest.test_case "crosspoints" `Quick test_tt_crosspoints;
         Alcotest.test_case "errors" `Quick test_tt_errors;
         Alcotest.test_case "semantic equality" `Quick test_tt_equal_semantics ]);
      ("generate",
       [ Alcotest.test_case "verify by extraction" `Quick
           test_pla_generate_verify;
         Alcotest.test_case "structure" `Quick test_pla_structure;
         Alcotest.test_case "cif" `Quick test_pla_cif;
         prop_random_plas ]);
      ("decoder",
       [ Alcotest.test_case "3-to-8" `Quick test_decoder;
         Alcotest.test_case "shared sample" `Quick
           test_decoder_and_pla_share_sample ]);
      ("hpla",
       [ Alcotest.test_case "redundancy counts (E5)" `Quick
           test_hpla_redundancy;
         Alcotest.test_case "same layout" `Quick test_hpla_same_layout ]);
      ("design-file",
       [ Alcotest.test_case "pla equivalence" `Quick
           test_pla_design_file_equivalence;
         Alcotest.test_case "decoder equivalence" `Quick
           test_decoder_design_file_equivalence;
         prop_design_file_random ]);
      ("folding",
       [ Alcotest.test_case "plan" `Quick test_fold_plan;
         Alcotest.test_case "verify + shrink" `Quick
           test_fold_verify_and_shrink;
         Alcotest.test_case "unfoldable" `Quick test_fold_unfoldable;
         Alcotest.test_case "row reorder" `Quick test_fold_needs_row_reorder;
         prop_fold_random ]);
      ("rom",
       [ Alcotest.test_case "round trip" `Quick test_rom_roundtrip;
         Alcotest.test_case "errors" `Quick test_rom_errors;
         prop_rom_random ]);
      ("weinberger",
       [ Alcotest.test_case "eval" `Quick test_weinberger_eval;
         Alcotest.test_case "validate" `Quick test_weinberger_validate;
         Alcotest.test_case "layout + extraction" `Quick
           test_weinberger_layout;
         Alcotest.test_case "truth-table compilation" `Quick
           test_weinberger_compile_tt;
         prop_weinberger_compile_random;
         prop_weinberger_random ]) ]

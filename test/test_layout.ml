(* Tests for the layout database: cells, instances, flattening,
   statistics and the CIF writer/reader. *)

open Rsg_geom
open Rsg_layout

let vec = Alcotest.testable Vec.pp Vec.equal

let box = Alcotest.testable Box.pp Box.equal

(* A tiny two-level hierarchy used by several tests:

   leaf  = 4x2 metal box at origin, label "pin" at (0, 0)
   duo   = two leaf instances: one at (0,0) north, one at (10, 5) east
   top   = duo at (0,0) plus duo at (100, 0) mirrored. *)

let build_leaf () =
  let leaf = Cell.create "leaf" in
  Cell.add_box leaf Layer.Metal (Box.of_size ~origin:Vec.zero ~width:4 ~height:2);
  Cell.add_label leaf "pin" Vec.zero;
  leaf

let build_hierarchy () =
  let leaf = build_leaf () in
  let duo = Cell.create "duo" in
  ignore (Cell.add_instance duo ~at:Vec.zero leaf);
  ignore (Cell.add_instance duo ~orient:Orient.east ~at:(Vec.make 10 5) leaf);
  let top = Cell.create "top" in
  ignore (Cell.add_instance top ~at:Vec.zero duo);
  ignore (Cell.add_instance top ~orient:Orient.mirror_y ~at:(Vec.make 100 0) duo);
  (leaf, duo, top)

let test_cell_accessors () =
  let leaf, duo, _ = build_hierarchy () in
  Alcotest.(check int) "leaf boxes" 1 (List.length (Cell.boxes leaf));
  Alcotest.(check int) "leaf labels" 1 (List.length (Cell.labels leaf));
  Alcotest.(check int) "duo instances" 2 (List.length (Cell.instances duo));
  Alcotest.(check (option box)) "leaf local bbox"
    (Some (Box.make ~xmin:0 ~ymin:0 ~xmax:4 ~ymax:2))
    (Cell.local_bbox leaf)

let test_bbox_recursive () =
  let _, duo, _ = build_hierarchy () in
  (* Second leaf instance: east orientation maps the 4x2 box corners
     (0,0) and (4,2) to (0,0) and (2,-4); translated to (10,5) gives
     [10,1 .. 12,5].  Union with the first instance [0,0..4,2]. *)
  Alcotest.(check (option box)) "duo bbox"
    (Some (Box.make ~xmin:0 ~ymin:0 ~xmax:12 ~ymax:5))
    (Cell.bbox duo)

let test_instance_cycle_detected () =
  let a = Cell.create "a" in
  let b = Cell.create "b" in
  ignore (Cell.add_instance a ~at:Vec.zero b);
  ignore (Cell.add_instance b ~at:Vec.zero a);
  Alcotest.check_raises "cycle" (Cell.Instance_cycle "a") (fun () ->
      ignore (Cell.bbox a))

let test_flatten_counts () =
  let _, _, top = build_hierarchy () in
  let f = Flatten.flatten top in
  Alcotest.(check int) "4 boxes" 4 (Array.length f.Flatten.flat_boxes);
  Alcotest.(check int) "4 labels" 4 (Array.length f.Flatten.flat_labels);
  let s = Flatten.stats top in
  Alcotest.(check int) "instances" 6 s.Flatten.n_instances;
  Alcotest.(check int) "leaf instances" 4 s.Flatten.n_leaf_instances;
  Alcotest.(check (list (pair string int)))
    "by cell"
    [ ("duo", 2); ("leaf", 4) ]
    s.Flatten.by_cell;
  Alcotest.(check int) "box area" (4 * 8) s.Flatten.box_area

let test_flatten_placement () =
  let _, _, top = build_hierarchy () in
  let f = Flatten.flatten top in
  (* The first leaf of the mirrored duo sits at (100, 0) mirrored:
     its label lands exactly at the duo origin. *)
  let pins =
    List.filter (fun (t, _) -> t = "pin") (Array.to_list f.Flatten.flat_labels)
  in
  let positions = List.map snd pins in
  Alcotest.(check bool) "mirrored duo pin present" true
    (List.exists (Vec.equal (Vec.make 100 0)) positions);
  (* Second leaf of the mirrored duo: mirror_y maps (10,5) to (-10,5),
     so its pin is at (90, 5). *)
  Alcotest.(check bool) "mirrored inner pin present" true
    (List.exists (Vec.equal (Vec.make 90 5)) positions)

let test_db () =
  let db = Db.create () in
  let leaf, duo, top = build_hierarchy () in
  Db.add db leaf;
  Db.add db duo;
  Db.add db top;
  Db.add db leaf;
  (* re-adding same cell is fine *)
  Alcotest.(check int) "3 cells" 3 (Db.length db);
  Alcotest.(check (list string)) "names" [ "duo"; "leaf"; "top" ] (Db.names db);
  Alcotest.(check bool) "mem" true (Db.mem db "duo");
  Alcotest.(check string) "fresh name" "leaf-2" (Db.fresh_name db "leaf");
  Alcotest.check_raises "duplicate name" (Db.Duplicate_cell "leaf")
    (fun () -> Db.add db (Cell.create "leaf"))

(* ------------------------------------------------------------------ *)
(* CIF round trips                                                    *)

let test_cif_roundtrip_hierarchy () =
  let _, _, top = build_hierarchy () in
  let s = Cif.to_string top in
  let r = Cif.of_string s in
  Alcotest.(check int) "3 symbols" 3 (Db.length r.Cif.db);
  let top' = Db.find_exn r.Cif.db "top" in
  Alcotest.(check bool) "geometry identical" true (Cif.roundtrip_equal top top')

let test_cif_all_orientations () =
  let leaf = build_leaf () in
  let c = Cell.create "compass" in
  List.iteri
    (fun i o ->
      ignore (Cell.add_instance c ~orient:o ~at:(Vec.make (20 * i) 7) leaf))
    Orient.all;
  let r = Cif.of_string (Cif.to_string c) in
  let c' = Db.find_exn r.Cif.db "compass" in
  Alcotest.(check bool) "all 8 orientations survive" true
    (Cif.roundtrip_equal c c');
  (* Orientations must round trip exactly, not just geometrically. *)
  let orients cell =
    List.map (fun (i : Cell.instance) -> Orient.to_index i.Cell.orientation)
      (Cell.instances cell)
  in
  Alcotest.(check (list int)) "exact orientations" (orients c) (orients c')

let test_cif_layers () =
  let c = Cell.create "layers" in
  List.iteri
    (fun i l ->
      Cell.add_box c l (Box.of_size ~origin:(Vec.make (10 * i) 0) ~width:3 ~height:3))
    Layer.all;
  let r = Cif.of_string (Cif.to_string c) in
  let c' = Db.find_exn r.Cif.db "layers" in
  let layers cell = List.map fst (Cell.boxes cell) in
  Alcotest.(check bool) "layers preserved" true (layers c = layers c')

let test_cif_negative_coords () =
  let c = Cell.create "neg" in
  Cell.add_box c Layer.Poly (Box.make ~xmin:(-7) ~ymin:(-3) ~xmax:(-1) ~ymax:4);
  Cell.add_label c "13" (Vec.make (-5) (-2));
  let r = Cif.of_string (Cif.to_string c) in
  let c' = Db.find_exn r.Cif.db "neg" in
  Alcotest.(check bool) "negative geometry" true (Cif.roundtrip_equal c c');
  match Cell.labels c' with
  | [ l ] ->
    Alcotest.(check string) "label text" "13" l.Cell.text;
    Alcotest.(check vec) "label pos" (Vec.make (-5) (-2)) l.Cell.at
  | _ -> Alcotest.fail "expected one label"

let test_cif_file_io () =
  let _, _, top = build_hierarchy () in
  let path = Filename.temp_file "rsg" ".cif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cif.write_file path top;
      let r = Cif.read_file path in
      Alcotest.(check bool) "file round trip" true
        (Cif.roundtrip_equal top (Db.find_exn r.Cif.db "top")))

let test_cif_rejects_garbage () =
  Alcotest.(check bool) "bad input raises" true
    (try
       ignore (Cif.of_string "DS 1 1 1; B 3 3;");
       false
     with Failure _ -> true)

(* Property: random flat cells round trip through CIF. *)
let gen_flat_cell =
  let open QCheck in
  let gen_box =
    map
      (fun ((x, y), (w, h)) ->
        Box.of_size ~origin:(Vec.make x y) ~width:(w + 1) ~height:(h + 1))
      (pair
         (pair (int_range (-30) 30) (int_range (-30) 30))
         (pair (int_range 0 20) (int_range 0 20)))
  in
  let gen_layer = map (fun i -> List.nth Layer.all (i mod 8)) (int_range 0 7) in
  map
    (fun boxes ->
      let c = Cell.create "random" in
      List.iter (fun (l, b) -> Cell.add_box c l b) boxes;
      c)
    (list_of_size (Gen.int_range 1 20) (pair gen_layer gen_box))

let prop_cif_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random cells round trip" gen_flat_cell
       (fun c ->
         let r = Cif.of_string (Cif.to_string c) in
         Cif.roundtrip_equal c (Db.find_exn r.Cif.db "random")))

(* ------------------------------------------------------------------ *)
(* DEF (native text format)                                           *)

let exact_equal (a : Cell.t) (b : Cell.t) =
  (* structural equality, not just flattened-geometry equality *)
  let rec cmp (a : Cell.t) (b : Cell.t) =
    String.equal a.Cell.cname b.Cell.cname
    && List.length (Cell.objects a) = List.length (Cell.objects b)
    && List.for_all2
         (fun oa ob ->
           match (oa, ob) with
           | Cell.Obj_box (la, ba), Cell.Obj_box (lb, bb) ->
             Layer.equal la lb && Box.equal ba bb
           | Cell.Obj_label la, Cell.Obj_label lb ->
             String.equal la.Cell.text lb.Cell.text && Vec.equal la.Cell.at lb.Cell.at
           | Cell.Obj_instance ia, Cell.Obj_instance ib ->
             Vec.equal ia.Cell.point_of_call ib.Cell.point_of_call
             && Orient.equal ia.Cell.orientation ib.Cell.orientation
             && cmp ia.Cell.def ib.Cell.def
           | _ -> false)
         (Cell.objects a) (Cell.objects b)
  in
  cmp a b

let test_def_roundtrip () =
  let _, _, top = build_hierarchy () in
  let r = Def.of_string (Def.to_string top) in
  (match r.Def.top with
  | Some top' ->
    Alcotest.(check bool) "structurally identical" true (exact_equal top top')
  | None -> Alcotest.fail "no top cell");
  Alcotest.(check int) "three cells" 3 (Db.length r.Def.db)

let test_def_all_orientations () =
  let leaf = build_leaf () in
  let c = Cell.create "compass" in
  List.iteri
    (fun i o ->
      ignore (Cell.add_instance c ~orient:o ~at:(Vec.make (20 * i) (-7)) leaf))
    Orient.all;
  match (Def.of_string (Def.to_string c)).Def.top with
  | Some c' -> Alcotest.(check bool) "orientations exact" true (exact_equal c c')
  | None -> Alcotest.fail "no top"

let test_def_errors () =
  let raises s =
    try ignore (Def.of_string s); false with Failure _ -> true
  in
  Alcotest.(check bool) "call before definition" true
    (raises "cell a\nc b 0 0 north\nend\n");
  Alcotest.(check bool) "box outside cell" true (raises "b metal 0 0 1 1\n");
  Alcotest.(check bool) "bad layer" true
    (raises "cell a\nb vibranium 0 0 1 1\nend\n");
  Alcotest.(check bool) "bad orientation" true
    (raises "cell a\nend\ncell b\nc a 0 0 sideways\nend\n");
  Alcotest.(check bool) "unterminated" true (raises "cell a\n")

let prop_def_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random cells round trip (def)"
       gen_flat_cell (fun c ->
         match (Def.of_string (Def.to_string c)).Def.top with
         | Some c' -> exact_equal c c'
         | None -> false))

let test_def_cif_agree () =
  (* both formats preserve the same flattened geometry *)
  let _, _, top = build_hierarchy () in
  let via_def = Option.get (Def.of_string (Def.to_string top)).Def.top in
  let via_cif =
    Db.find_exn (Cif.of_string (Cif.to_string top)).Cif.db "top"
  in
  Alcotest.(check bool) "formats agree" true
    (Cif.roundtrip_equal via_def via_cif)

(* ------------------------------------------------------------------ *)
(* Reorient                                                           *)

let test_transpose_element () =
  Alcotest.(check vec) "maps (x,y) to (y,x)" (Vec.make 3 2)
    (Orient.apply Reorient.transpose (Vec.make 2 3));
  Alcotest.(check bool) "involution" true
    (Orient.equal
       (Orient.compose Reorient.transpose Reorient.transpose)
       Orient.identity)

let norm_flat (f : Flatten.flat) =
  List.sort compare
    (List.map (fun (l, b) -> (Layer.to_index l, b))
       (Array.to_list f.Flatten.flat_boxes))

let test_reorient_hierarchy () =
  let _, _, top = build_hierarchy () in
  List.iter
    (fun o ->
      let r = Reorient.cell o top in
      let expected =
        List.sort compare
          (List.map
             (fun (l, b) -> (Layer.to_index l, Box.transform o b))
             (Array.to_list (Flatten.flatten top).Flatten.flat_boxes))
      in
      Alcotest.(check bool)
        (Orient.name o ^ " commutes with flatten")
        true
        (norm_flat (Flatten.flatten r) = expected))
    Orient.all

let test_reorient_shares_definitions () =
  let _, duo, _ = build_hierarchy () in
  let top = Cell.create "two-duos" in
  ignore (Cell.add_instance top ~at:Vec.zero duo);
  ignore (Cell.add_instance top ~at:(Vec.make 50 0) duo);
  let r = Reorient.cell Orient.south top in
  match Cell.instances r with
  | [ a; b ] ->
    Alcotest.(check bool) "definition shared" true (a.Cell.def == b.Cell.def)
  | _ -> Alcotest.fail "two instances"

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)

let test_report () =
  let _, _, top = build_hierarchy () in
  let r = Report.of_cell top in
  Alcotest.(check string) "cell" "top" r.Report.r_cell;
  Alcotest.(check int) "instances" 6 r.Report.r_instances;
  Alcotest.(check int) "boxes" 4 r.Report.r_boxes;
  (* one layer in use: metal, 4 boxes of area 8 each *)
  (match r.Report.r_layers with
  | [ u ] ->
    Alcotest.(check bool) "metal" true (Layer.equal u.Report.lu_layer Layer.Metal);
    Alcotest.(check int) "boxes" 4 u.Report.lu_boxes;
    Alcotest.(check int) "area" 32 u.Report.lu_area
  | _ -> Alcotest.fail "expected one layer");
  (* hierarchy tree: top -> duo x2 -> leaf x2 *)
  (match r.Report.r_hierarchy with
  | { Report.t_name = "top"; t_children = [ duo ]; _ } ->
    Alcotest.(check string) "child" "duo" duo.Report.t_name;
    Alcotest.(check int) "duo count" 2 duo.Report.t_count;
    (match duo.Report.t_children with
    | [ leaf ] ->
      Alcotest.(check string) "grandchild" "leaf" leaf.Report.t_name;
      Alcotest.(check int) "leaf count" 2 leaf.Report.t_count
    | _ -> Alcotest.fail "expected one grandchild")
  | _ -> Alcotest.fail "bad hierarchy");
  (* the printer runs without error and mentions the cell *)
  let txt = Format.asprintf "%a" Report.pp r in
  Alcotest.(check bool) "printed" true
    (String.length txt > 0
    && String.length txt
       > String.length "cell top"
    && String.sub txt 0 8 = "cell top")

(* ------------------------------------------------------------------ *)
(* Golden CIF output: guards the writer against format drift.         *)

let test_cif_golden () =
  let c = Cell.create "gold" in
  Cell.add_box c Layer.Metal (Box.of_size ~origin:(Vec.make 1 2) ~width:3 ~height:4);
  Cell.add_label c "7" (Vec.make 2 3);
  let top = Cell.create "goldtop" in
  ignore (Cell.add_instance top ~orient:Orient.east ~at:(Vec.make 5 6) c);
  let expected =
    "(CIF written by rsg; 1 lambda = 2 units);\n\
     DS 1 1 1;\n\
     9 gold;\n\
     L NM;\n\
     B 6 8 5 8;\n\
     94 7 4 6;\n\
     DF;\n\
     DS 2 1 1;\n\
     9 goldtop;\n\
     C 1 R 0 -1 T 10 12;\n\
     DF;\n\
     C 2;\n\
     E\n"
  in
  Alcotest.(check string) "golden cif" expected (Cif.to_string top)

let test_def_golden () =
  let c = Cell.create "gold" in
  Cell.add_box c Layer.Poly (Box.of_size ~origin:(Vec.make 0 0) ~width:2 ~height:2);
  let top = Cell.create "goldtop" in
  ignore (Cell.add_instance top ~orient:Orient.mirror_y ~at:(Vec.make (-3) 4) c);
  let expected =
    "; rsg def 1\n\
     cell gold\n\
     b poly 0 0 2 2\n\
     end\n\
     cell goldtop\n\
     c gold -3 4 mirror-north\n\
     end\n\
     top goldtop\n"
  in
  Alcotest.(check string) "golden def" expected (Def.to_string top)

(* Regression: a real generator output (not just synthetic fixtures)
   survives the CIF writer/reader with geometry intact, through an
   actual file on disk. *)
let test_cif_generated_pla_roundtrip () =
  let tt = Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
  let cell = (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell in
  let path = Filename.temp_file "rsg_pla" ".cif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cif.write_file path cell;
      let r = Cif.read_file path in
      let cell' = Db.find_exn r.Cif.db cell.Cell.cname in
      Alcotest.(check bool) "geometry identical" true
        (Cif.roundtrip_equal cell cell');
      let flat c =
        Array.to_list (Flatten.flatten c).Flatten.flat_boxes
        |> List.map (fun (l, b) ->
               (Layer.name l, b.Box.xmin, b.Box.ymin, b.Box.xmax, b.Box.ymax))
        |> List.sort compare
      in
      Alcotest.(check int) "same box count"
        (List.length (flat cell))
        (List.length (flat cell'));
      Alcotest.(check bool) "same box multiset" true (flat cell = flat cell'))

(* ------------------------------------------------------------------ *)
(* Prototype cache                                                    *)
(* ------------------------------------------------------------------ *)

(* The cached path must agree with the naive traversal exactly — same
   boxes, same order, same labels — on every generator family, because
   DRC, extraction and the writers now consume it. *)
let check_prototypes_match name cell =
  let f = Flatten.flatten cell in
  let p = Flatten.prototypes cell in
  let pf = Flatten.protos_flat p in
  Alcotest.(check bool)
    (name ^ ": boxes identical")
    true
    (pf.Flatten.flat_boxes = f.Flatten.flat_boxes);
  Alcotest.(check bool)
    (name ^ ": labels identical")
    true
    (pf.Flatten.flat_labels = f.Flatten.flat_labels);
  Alcotest.(check bool)
    (name ^ ": bbox identical")
    true
    (pf.Flatten.flat_bbox = f.Flatten.flat_bbox);
  (* stats cross-checks against the materialised geometry *)
  let s = Flatten.protos_stats p in
  Alcotest.(check int)
    (name ^ ": n_boxes")
    (Array.length f.Flatten.flat_boxes)
    s.Flatten.n_boxes;
  let area =
    Array.fold_left (fun a (_, b) -> a + Box.area b) 0 f.Flatten.flat_boxes
  in
  Alcotest.(check int) (name ^ ": box_area") area s.Flatten.box_area;
  let bb =
    Array.fold_left
      (fun acc (_, b) ->
        match acc with None -> Some b | Some a -> Some (Box.union a b))
      None f.Flatten.flat_boxes
  in
  Alcotest.(check bool) (name ^ ": bbox = fold") true (bb = s.Flatten.bbox);
  Alcotest.(check int)
    (name ^ ": n_instances")
    (List.length (Flatten.instance_placements cell))
    s.Flatten.n_instances

let test_prototypes_pla () =
  let tt = Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
  check_prototypes_match "pla" (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell

let test_prototypes_decoder () =
  check_prototypes_match "decoder" (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell

let test_prototypes_ram () =
  let r = Rsg_ram.Ram_gen.generate ~words:16 ~bits:8 () in
  check_prototypes_match "ram" r.Rsg_ram.Ram_gen.cell

let test_prototypes_multiplier () =
  let m = Rsg_mult.Layout_gen.generate ~xsize:6 ~ysize:6 () in
  check_prototypes_match "multiplier" m.Rsg_mult.Layout_gen.whole;
  check_prototypes_match "multiplier array" m.Rsg_mult.Layout_gen.array_cell

let test_prototypes_synthetic () =
  let _, _, top = build_hierarchy () in
  check_prototypes_match "hierarchy" top;
  check_prototypes_match "leaf only" (build_leaf ())

(* Both traversals report runaway recursion as the same typed error,
   with the offending cell in the payload. *)
let test_depth_exceeded () =
  let a = Cell.create "a" in
  let b = Cell.create "b" in
  ignore (Cell.add_instance a ~at:Vec.zero b);
  ignore (Cell.add_instance b ~at:Vec.zero a);
  Alcotest.check_raises "flatten"
    (Flatten.Depth_exceeded { cell = "b"; max_depth = 4 }) (fun () ->
      ignore (Flatten.flatten ~max_depth:4 a));
  Alcotest.check_raises "prototypes"
    (Flatten.Depth_exceeded { cell = "b"; max_depth = 4 }) (fun () ->
      ignore (Flatten.prototypes ~max_depth:4 a))

(* A 50 000-deep instance chain: the explicit work stack must not
   overflow the OCaml call stack, and the single leaf box must land at
   the sum of all the instance offsets. *)
let test_flatten_deep_chain () =
  let depth = 50_000 in
  let leaf = Cell.create "chain-0" in
  Cell.add_box leaf Layer.Metal (Box.of_size ~origin:Vec.zero ~width:2 ~height:2);
  let top = ref leaf in
  for i = 1 to depth do
    let c = Cell.create (Printf.sprintf "chain-%d" i) in
    ignore (Cell.add_instance c ~at:(Vec.make 1 0) !top);
    top := c
  done;
  let f = Flatten.flatten ~max_depth:(depth + 1) !top in
  Alcotest.(check int) "one box" 1 (Array.length f.Flatten.flat_boxes);
  let _, b = f.Flatten.flat_boxes.(0) in
  Alcotest.(check box) "translated by the chain"
    (Box.make ~xmin:depth ~ymin:0 ~xmax:(depth + 2) ~ymax:2)
    b

(* Same shape through the prototype cache (shorter: every link is a
   distinct celltype, so the per-cell census makes this quadratic in
   chain length — regular designs have a handful of celltypes). *)
let test_prototypes_deep_chain () =
  let depth = 2_000 in
  let leaf = Cell.create "pchain-0" in
  Cell.add_box leaf Layer.Metal (Box.of_size ~origin:Vec.zero ~width:2 ~height:2);
  let top = ref leaf in
  for i = 1 to depth do
    let c = Cell.create (Printf.sprintf "pchain-%d" i) in
    ignore (Cell.add_instance c ~at:(Vec.make 1 0) !top);
    top := c
  done;
  let p = Flatten.prototypes ~max_depth:(depth + 1) !top in
  Alcotest.(check int) "distinct cells" (depth + 1) (Flatten.distinct_cells p);
  let s = Flatten.protos_stats p in
  Alcotest.(check int) "one box" 1 s.Flatten.n_boxes;
  Alcotest.(check int) "instances" depth s.Flatten.n_instances;
  let pf = Flatten.protos_flat p in
  Alcotest.(check bool) "matches naive" true
    (pf.Flatten.flat_boxes
    = (Flatten.flatten ~max_depth:(depth + 1) !top).Flatten.flat_boxes)

(* Byte-for-byte CIF regression on a real generator output.  The
   writer is a plain Buffer pipeline; any change to its framing,
   ordering or number formatting must be a conscious one. *)
let test_cif_golden_pla () =
  let expected =
    String.concat "\n"
      [ "(CIF written by rsg; 1 lambda = 2 units);";
        "DS 1 1 1;";
        "9 and-sq;";
        "L NP;";
        "B 8 40 20 20;";
        "L NM;";
        "B 40 8 20 20;";
        "DF;";
        "DS 2 1 1;";
        "9 and-cross;";
        "L NB;";
        "B 16 16 8 8;";
        "L NC;";
        "B 8 8 8 8;";
        "DF;";
        "DS 3 1 1;";
        "9 inbuf;";
        "L ND;";
        "B 72 24 40 20;";
        "L NP;";
        "B 8 40 20 20;";
        "B 8 40 60 20;";
        "L NM;";
        "B 80 8 40 36;";
        "DF;";
        "DS 4 1 1;";
        "9 connect-ao;";
        "L NM;";
        "B 40 8 20 20;";
        "L ND;";
        "B 16 24 20 20;";
        "L XC;";
        "B 8 8 20 20;";
        "DF;";
        "DS 5 1 1;";
        "9 or-sq;";
        "L NM;";
        "B 8 40 20 20;";
        "L NP;";
        "B 40 8 20 20;";
        "DF;";
        "DS 6 1 1;";
        "9 or-cross;";
        "L NI;";
        "B 16 16 8 8;";
        "L NC;";
        "B 8 8 8 8;";
        "DF;";
        "DS 7 1 1;";
        "9 outbuf;";
        "L ND;";
        "B 24 24 20 20;";
        "L NM;";
        "B 8 40 20 20;";
        "B 40 8 20 36;";
        "DF;";
        "DS 8 1 1;";
        "9 pla;";
        "C 1;";
        "C 1 T 40 0;";
        "C 1 T 0 40;";
        "C 2 T 12 12;";
        "C 1 T 80 0;";
        "C 1 T 40 40;";
        "C 3 T 0 80;";
        "C 1 T 120 0;";
        "C 1 T 80 40;";
        "C 2 T 52 52;";
        "C 1 T 160 0;";
        "C 2 T 132 12;";
        "C 1 T 120 40;";
        "C 3 T 80 80;";
        "C 1 T 200 0;";
        "C 1 T 160 40;";
        "C 4 T 240 0;";
        "C 1 T 200 40;";
        "C 3 T 160 80;";
        "C 2 T 172 52;";
        "C 5 T 280 0;";
        "C 4 T 240 40;";
        "C 5 T 320 0;";
        "C 6 T 292 12;";
        "C 5 T 280 40;";
        "C 5 T 320 40;";
        "C 7 T 280 80;";
        "C 7 T 320 80;";
        "C 6 T 332 52;";
        "DF;";
        "C 8;";
        "E";
        "" ]
  in
  let tt = Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
  let cell = (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell in
  Alcotest.(check string) "pla cif bytes" expected (Cif.to_string cell)

let () =
  Alcotest.run "rsg_layout"
    [ ("cell",
       [ Alcotest.test_case "accessors" `Quick test_cell_accessors;
         Alcotest.test_case "recursive bbox" `Quick test_bbox_recursive;
         Alcotest.test_case "cycle detection" `Quick test_instance_cycle_detected ]);
      ("flatten",
       [ Alcotest.test_case "counts" `Quick test_flatten_counts;
         Alcotest.test_case "placement" `Quick test_flatten_placement ]);
      ("db", [ Alcotest.test_case "operations" `Quick test_db ]);
      ("cif",
       [ Alcotest.test_case "hierarchy round trip" `Quick test_cif_roundtrip_hierarchy;
         Alcotest.test_case "all orientations" `Quick test_cif_all_orientations;
         Alcotest.test_case "all layers" `Quick test_cif_layers;
         Alcotest.test_case "negative coordinates" `Quick test_cif_negative_coords;
         Alcotest.test_case "file io" `Quick test_cif_file_io;
         Alcotest.test_case "rejects garbage" `Quick test_cif_rejects_garbage;
         Alcotest.test_case "generated pla round trip" `Quick
           test_cif_generated_pla_roundtrip;
         prop_cif_roundtrip ]);
      ("def",
       [ Alcotest.test_case "hierarchy round trip" `Quick test_def_roundtrip;
         Alcotest.test_case "all orientations" `Quick test_def_all_orientations;
         Alcotest.test_case "errors" `Quick test_def_errors;
         Alcotest.test_case "agrees with cif" `Quick test_def_cif_agree;
         prop_def_roundtrip ]);
      ("reorient",
       [ Alcotest.test_case "transpose element" `Quick test_transpose_element;
         Alcotest.test_case "hierarchy" `Quick test_reorient_hierarchy;
         Alcotest.test_case "shares definitions" `Quick
           test_reorient_shares_definitions ]);
      ("report", [ Alcotest.test_case "summary" `Quick test_report ]);
      ("prototypes",
       [ Alcotest.test_case "pla" `Quick test_prototypes_pla;
         Alcotest.test_case "decoder" `Quick test_prototypes_decoder;
         Alcotest.test_case "ram" `Quick test_prototypes_ram;
         Alcotest.test_case "multiplier" `Quick test_prototypes_multiplier;
         Alcotest.test_case "synthetic" `Quick test_prototypes_synthetic;
         Alcotest.test_case "depth exceeded" `Quick test_depth_exceeded;
         Alcotest.test_case "deep chain" `Quick test_flatten_deep_chain;
         Alcotest.test_case "deep chain prototypes" `Quick
           test_prototypes_deep_chain ]);
      ("golden",
       [ Alcotest.test_case "cif output" `Quick test_cif_golden;
         Alcotest.test_case "def output" `Quick test_def_golden;
         Alcotest.test_case "pla cif bytes" `Quick test_cif_golden_pla ]);
      ("fuzz",
       [ (* hostile input must fail cleanly, never crash *)
         QCheck_alcotest.to_alcotest
           (QCheck.Test.make ~count:300 ~name:"cif reader never crashes"
              QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200)
                        QCheck.Gen.printable)
              (fun s ->
                match Cif.of_string s with
                | _ -> true
                | exception Failure _ -> true));
         QCheck_alcotest.to_alcotest
           (QCheck.Test.make ~count:300 ~name:"def reader never crashes"
              QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200)
                        QCheck.Gen.printable)
              (fun s ->
                match Def.of_string s with
                | _ -> true
                | exception Failure _ -> true)) ]) ]

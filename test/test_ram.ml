(* Tests for the RAM generator: structure, decoder docking through
   interface inheritance, and the layout-backed behavioural model. *)

open Rsg_layout
open Rsg_ram

let test_structure () =
  let words = 8 and bits = 4 in
  let ram = Ram_gen.generate ~words ~bits () in
  let counts = Ram_gen.structure_counts ram in
  let get name = try List.assoc name counts with Not_found -> 0 in
  Alcotest.(check int) "bit cells" (words * bits) (get Ram_cells.bitcell);
  Alcotest.(check int) "word-line drivers" words (get Ram_cells.wldrv);
  Alcotest.(check int) "precharge row" bits (get Ram_cells.precharge);
  Alcotest.(check int) "sense amps" bits (get Ram_cells.senseamp);
  (* the decoder macrocell came along: 2n columns x 2^n minterm rows *)
  Alcotest.(check int) "decoder plane" (2 * 3 * words)
    (get Rsg_pla.Pla_cells.and_sq);
  Alcotest.(check int) "row drivers" words (get Rsg_pla.Pla_cells.connect_ao)

let test_docking () =
  List.iter
    (fun (words, bits) ->
      let ram = Ram_gen.generate ~words ~bits () in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d docked" words bits)
        true
        (Ram_gen.docking_aligned ram))
    [ (2, 1); (4, 4); (8, 2); (16, 8) ]

let test_bad_sizes () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non power of two" true
    (raises (fun () -> Ram_gen.generate ~words:6 ~bits:4 ()));
  Alcotest.(check bool) "one word" true
    (raises (fun () -> Ram_gen.generate ~words:1 ~bits:4 ()));
  Alcotest.(check bool) "zero bits" true
    (raises (fun () -> Ram_gen.generate ~words:4 ~bits:0 ()))

let test_model_basic () =
  let ram = Ram_gen.generate ~words:8 ~bits:4 () in
  let m = Ram_gen.Model.create ram in
  for addr = 0 to 7 do
    Alcotest.(check int) "initially zero" 0 (Ram_gen.Model.read m ~addr)
  done;
  Ram_gen.Model.write m ~addr:3 9;
  Ram_gen.Model.write m ~addr:7 5;
  Ram_gen.Model.write m ~addr:0 15;
  Alcotest.(check int) "read 3" 9 (Ram_gen.Model.read m ~addr:3);
  Alcotest.(check int) "read 7" 5 (Ram_gen.Model.read m ~addr:7);
  Alcotest.(check int) "read 0" 15 (Ram_gen.Model.read m ~addr:0);
  Alcotest.(check int) "read untouched" 0 (Ram_gen.Model.read m ~addr:4);
  Alcotest.(check bool) "write out of range" true
    (try Ram_gen.Model.write m ~addr:1 16; false
     with Invalid_argument _ -> true)

let prop_model_random =
  (* random write/read sequences behave like an array *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"random traffic matches reference"
       QCheck.(
         list_of_size (QCheck.Gen.int_range 1 40)
           (pair (int_bound 7) (int_bound 15)))
       (fun ops ->
         let ram = Ram_gen.generate ~words:8 ~bits:4 () in
         let m = Ram_gen.Model.create ram in
         let reference = Array.make 8 0 in
         List.for_all
           (fun (addr, v) ->
             Ram_gen.Model.write m ~addr v;
             reference.(addr) <- v;
             List.for_all
               (fun a -> Ram_gen.Model.read m ~addr:a = reference.(a))
               [ 0; 3; 7 ])
           ops))

let test_cif_roundtrip () =
  let ram = Ram_gen.generate ~words:4 ~bits:2 () in
  let r = Cif.of_string (Cif.to_string ram.Ram_gen.cell) in
  Alcotest.(check bool) "cif" true
    (Cif.roundtrip_equal ram.Ram_gen.cell
       (Db.find_exn r.Cif.db ram.Ram_gen.cell.Cell.cname))

let test_shared_sample () =
  (* several RAMs from one sample: fresh names, no clashes *)
  let sample, _ = Ram_cells.build () in
  let a = Ram_gen.generate ~sample ~words:4 ~bits:2 () in
  let b = Ram_gen.generate ~sample ~words:8 ~bits:3 () in
  Alcotest.(check bool) "distinct names" true
    (a.Ram_gen.cell.Cell.cname <> b.Ram_gen.cell.Cell.cname);
  Alcotest.(check bool) "both docked" true
    (Ram_gen.docking_aligned a && Ram_gen.docking_aligned b)

let () =
  Alcotest.run "rsg_ram"
    [ ("ram",
       [ Alcotest.test_case "structure" `Quick test_structure;
         Alcotest.test_case "decoder docking (fig 2.4)" `Quick test_docking;
         Alcotest.test_case "bad sizes" `Quick test_bad_sizes;
         Alcotest.test_case "model" `Quick test_model_basic;
         prop_model_random;
         Alcotest.test_case "cif round trip" `Quick test_cif_roundtrip;
         Alcotest.test_case "shared sample" `Quick test_shared_sample ]) ]

(* Tests for the design-rule checker: the deck DSL, each check kind on
   hand-built geometry, zero violations on every generated layout
   (pre- and post-compaction), and the mutation self-check. *)

open Rsg_geom
open Rsg_drc
module Scanline = Rsg_compact.Scanline

let box x y w h = Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h

let item layer b = { Scanline.layer; box = b }

let rules violations = List.map (fun v -> v.Drc.v_rule) violations

let check_items ?deck items = (Drc.check ?deck (Array.of_list items)).Drc.r_violations

(* ------------------------------------------------------------------ *)
(* Deck DSL                                                           *)

let test_deck_roundtrip () =
  let d = Deck.default in
  let d' = Deck.of_string (Deck.to_string d) in
  Alcotest.(check string) "name" (Deck.name d) (Deck.name d');
  Alcotest.(check string) "rules" (Deck.to_string d) (Deck.to_string d');
  Alcotest.(check int) "rule count"
    (List.length (Deck.rules d))
    (List.length (Deck.rules d'))

let test_deck_parse () =
  let d =
    Deck.of_string
      "# a comment\n\
       deck mini\n\
       width metal 3   # trailing comment\n\
       spacing metal poly 2\n\
       enclosure contact metal|poly 1\n\
       overlap poly diffusion 2\n"
  in
  Alcotest.(check string) "name" "mini" (Deck.name d);
  Alcotest.(check (option int)) "width" (Some 3) (Deck.width d Layer.Metal);
  Alcotest.(check (option int)) "spacing symmetric" (Some 2)
    (Deck.spacing d Layer.Poly Layer.Metal);
  Alcotest.(check int) "enclosures" 1 (List.length (Deck.enclosures d));
  Alcotest.(check int) "overlaps" 1 (List.length (Deck.overlaps d))

let test_deck_errors () =
  let expect_line n text =
    match Deck.of_string text with
    | exception Deck.Parse_error (line, _) ->
      Alcotest.(check int) "error line" n line
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_line 1 "width bogus 3";
  expect_line 2 "width metal 3\nfrobnicate metal 1";
  expect_line 1 "width metal -2"

let test_deck_accessors () =
  let d = Deck.default in
  Alcotest.(check (option int)) "metal width" (Some 3) (Deck.width d Layer.Metal);
  Alcotest.(check (option int)) "metal spacing" (Some 2)
    (Deck.spacing d Layer.Metal Layer.Metal);
  Alcotest.(check (option int)) "poly-diff spacing" (Some 1)
    (Deck.spacing d Layer.Diffusion Layer.Poly);
  Alcotest.(check (option int)) "no glass width" None
    (Deck.width d Layer.Overglass)

let test_of_compact_rules () =
  let d = Deck.of_compact_rules Rsg_compact.Rules.default in
  Alcotest.(check (option int)) "metal width" (Some 3) (Deck.width d Layer.Metal);
  Alcotest.(check (option int)) "metal spacing" (Some 3)
    (Deck.spacing d Layer.Metal Layer.Metal)

(* ------------------------------------------------------------------ *)
(* Width: merged regions, both axes                                   *)

let wdeck = Deck.make ~name:"w" [ Deck.Width (Layer.Metal, 3) ]

let test_width_narrow_box () =
  match check_items ~deck:wdeck [ item Layer.Metal (box 0 0 2 10) ] with
  | [ v ] ->
    Alcotest.(check string) "rule" "width.metal" v.Drc.v_rule;
    Alcotest.(check int) "required" 3 v.Drc.v_required;
    Alcotest.(check int) "actual" 2 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_width_narrow_in_y () =
  match check_items ~deck:wdeck [ item Layer.Metal (box 0 0 10 2) ] with
  | [ v ] -> Alcotest.(check int) "actual" 2 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_width_merged_fragments_pass () =
  (* two 2-wide boxes side by side merge into a legal 4-wide region:
     fragment width must not be checked box-by-box *)
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:wdeck
          [ item Layer.Metal (box 0 0 2 10); item Layer.Metal (box 2 0 2 10) ]))

let test_width_wide_cross_passes () =
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:wdeck
          [ item Layer.Metal (box 0 4 10 3); item Layer.Metal (box 4 0 3 10) ]))

let test_width_thin_neck_caught () =
  (* two wide pads joined by a thin neck: only the neck is flagged *)
  match
    check_items ~deck:wdeck
      [ item Layer.Metal (box 0 0 4 4);
        item Layer.Metal (box 4 1 4 2);
        item Layer.Metal (box 8 0 4 4) ]
  with
  | [ v ] ->
    Alcotest.(check int) "neck height" 2 v.Drc.v_actual;
    Alcotest.(check bool) "at the neck" true
      (Box.overlaps (List.hd v.Drc.v_boxes) (box 4 1 4 2))
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

(* ------------------------------------------------------------------ *)
(* Spacing: facing edges across regions                               *)

let sdeck = Deck.make ~name:"s" [ Deck.Spacing (Layer.Metal, Layer.Metal, 3) ]

let test_spacing_close_pair () =
  match
    check_items ~deck:sdeck
      [ item Layer.Metal (box 0 0 4 10); item Layer.Metal (box 6 0 4 10) ]
  with
  | [ v ] ->
    Alcotest.(check string) "rule" "spacing.metal.metal" v.Drc.v_rule;
    Alcotest.(check int) "gap" 2 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_spacing_legal_pair () =
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:sdeck
          [ item Layer.Metal (box 0 0 4 10); item Layer.Metal (box 7 0 4 10) ]))

let test_spacing_same_region_exempt () =
  (* touching boxes are one region: no self-spacing *)
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:sdeck
          [ item Layer.Metal (box 0 0 4 10); item Layer.Metal (box 4 0 4 10) ]))

let test_spacing_corner_exempt () =
  (* diagonal neighbours at Chebyshev distance 1 never face each other *)
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:sdeck
          [ item Layer.Metal (box 0 0 4 4); item Layer.Metal (box 5 5 4 4) ]))

let test_spacing_one_violation_per_region_pair () =
  (* many fragment pairs across the same two wires still report once *)
  let wire x =
    [ item Layer.Metal (box x 0 4 5); item Layer.Metal (box x 5 4 5) ]
  in
  match check_items ~deck:sdeck (wire 0 @ wire 5) with
  | [ v ] -> Alcotest.(check int) "gap" 1 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_spacing_cross_layer () =
  let d = Deck.make ~name:"x" [ Deck.Spacing (Layer.Poly, Layer.Diffusion, 2) ] in
  (* a transistor (poly crossing diffusion) is exempt; a parallel run
     at gap 1 is not *)
  Alcotest.(check (list string)) "device exempt" []
    (rules
       (check_items ~deck:d
          [ item Layer.Poly (box 0 4 10 2); item Layer.Diffusion (box 4 0 2 10) ]));
  match
    check_items ~deck:d
      [ item Layer.Poly (box 0 0 10 2); item Layer.Diffusion (box 0 3 10 2) ]
  with
  | [ v ] ->
    Alcotest.(check string) "rule" "spacing.diffusion.poly" v.Drc.v_rule;
    Alcotest.(check int) "gap" 1 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

(* ------------------------------------------------------------------ *)
(* Enclosure: union coverage                                          *)

let edeck m =
  Deck.make ~name:"e" [ Deck.Enclosure (Layer.Contact, [ Layer.Metal ], m) ]

let test_enclosure_flush_passes () =
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:(edeck 0)
          [ item Layer.Contact (box 0 0 4 4); item Layer.Metal (box 0 0 4 4) ]))

let test_enclosure_union_coverage () =
  (* no single metal box covers the contact, but their union does *)
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:(edeck 0)
          [ item Layer.Contact (box 0 0 4 4);
            item Layer.Metal (box 0 0 2 4);
            item Layer.Metal (box 2 0 2 4) ]))

let test_enclosure_sticking_out () =
  match
    check_items ~deck:(edeck 0)
      [ item Layer.Contact (box 0 0 4 4); item Layer.Metal (box 0 0 3 4) ]
  with
  | [ v ] ->
    Alcotest.(check string) "rule" "enclosure.contact" v.Drc.v_rule;
    Alcotest.(check int) "uncovered" (-1) v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_enclosure_margin () =
  (* margin 1 requires a lambda of surround; flush coverage measures 0 *)
  (match
     check_items ~deck:(edeck 1)
       [ item Layer.Contact (box 0 0 4 4); item Layer.Metal (box 0 0 4 4) ]
   with
  | [ v ] ->
    Alcotest.(check int) "required" 1 v.Drc.v_required;
    Alcotest.(check int) "measured" 0 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs)));
  Alcotest.(check (list string)) "surrounded is clean" []
    (rules
       (check_items ~deck:(edeck 1)
          [ item Layer.Contact (box 1 1 4 4); item Layer.Metal (box 0 0 6 6) ]))

(* ------------------------------------------------------------------ *)
(* Overlap                                                            *)

let odeck = Deck.make ~name:"o" [ Deck.Overlap (Layer.Poly, Layer.Diffusion, 3) ]

let test_overlap_short_caught () =
  match
    check_items ~deck:odeck
      [ item Layer.Poly (box 0 0 2 2); item Layer.Diffusion (box 0 0 2 2) ]
  with
  | [ v ] ->
    Alcotest.(check string) "rule" "overlap.poly.diffusion" v.Drc.v_rule;
    Alcotest.(check int) "extent" 2 v.Drc.v_actual
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_overlap_long_passes () =
  (* a 3-wide gate crossing: the shared region reaches 3 in x *)
  Alcotest.(check (list string)) "clean" []
    (rules
       (check_items ~deck:odeck
          [ item Layer.Poly (box 0 0 3 8); item Layer.Diffusion (box 0 3 8 2) ]))

(* ------------------------------------------------------------------ *)
(* Generated layouts check clean, pre- and post-compaction            *)

let generated =
  lazy
    (let tt = Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
     [ ("pla", (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell);
       ("ram", (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell);
       ("mult8",
        (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ())
          .Rsg_mult.Layout_gen.whole) ])

let test_generated_clean () =
  List.iter
    (fun (name, cell) ->
      let r = Drc.check_cell cell in
      Alcotest.(check (list string)) (name ^ " clean") []
        (rules r.Drc.r_violations);
      Alcotest.(check bool) (name ^ " nonempty") true (r.Drc.r_boxes > 0))
    (Lazy.force generated)

let test_compacted_clean () =
  List.iter
    (fun (name, cell) ->
      let compacted, _ =
        Rsg_compact.Compactor.compact_cell Rsg_compact.Rules.default cell
      in
      Alcotest.(check (list string)) (name ^ "-compacted clean") []
        (rules (Drc.check_cell compacted).Drc.r_violations))
    (Lazy.force generated)

(* ------------------------------------------------------------------ *)
(* Mutation self-check                                                *)

let test_self_check_generated () =
  List.iter
    (fun (name, cell) ->
      match Drc.self_check_cell cell with
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
      | Ok sc ->
        let v = sc.Drc.sc_violation in
        Alcotest.(check string) (name ^ " rule")
          ("width." ^ Layer.name sc.Drc.sc_layer)
          v.Drc.v_rule;
        Alcotest.(check bool) (name ^ " located") true
          (List.exists
             (fun b -> Box.overlaps b sc.Drc.sc_mutated)
             v.Drc.v_boxes);
        Alcotest.(check bool) (name ^ " narrowed") true
          (v.Drc.v_actual < v.Drc.v_required))
    (List.filter (fun (n, _) -> n <> "mult8") (Lazy.force generated))

let test_self_check_rejects_dirty () =
  match
    Drc.self_check ~deck:wdeck [| item Layer.Metal (box 0 0 2 10) |]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dirty layout must not self-check"

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                               *)

(* The whole report — violations, counters, ordering — must be
   bit-identical whatever the pool size, on clean and dirty inputs
   alike.  This is the contract that lets CI run the suite under any
   RSG_DOMAINS. *)
let test_domains_identical_clean () =
  List.iter
    (fun (name, cell) ->
      let seq = Drc.check_cell ~domains:1 cell in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s report identical at %d domains" name d)
            true
            (Drc.check_cell ~domains:d cell = seq))
        [ 2; 3 ])
    (Lazy.force generated)

let test_domains_identical_dirty () =
  (* several rule families firing at once: narrow metal + narrow poly,
     a too-close pair, and a bare contact (enclosure) *)
  let items =
    [| item Layer.Metal (box 0 0 2 10);
       item Layer.Poly (box 20 0 1 10);
       item Layer.Metal (box 40 0 3 10);
       item Layer.Metal (box 45 0 3 10);
       item Layer.Contact (box 60 0 2 2) |]
  in
  let seq = Drc.check ~domains:1 items in
  Alcotest.(check bool) "dirty layout does violate" true
    (seq.Drc.r_violations <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "dirty report identical at %d domains" d)
        true
        (Drc.check ~domains:d items = seq))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Hierarchical checking                                              *)

module Flatten = Rsg_layout.Flatten
module Cell = Rsg_layout.Cell

let flat_rule_set (r : Drc.report) =
  List.sort_uniq String.compare (rules r.Drc.r_violations)

let hier_rule_set (r : Drc.hier_report) =
  r.Drc.h_levels
  |> List.concat_map (fun l ->
         List.map (fun (v, _) -> v.Drc.v_rule) l.Drc.l_violations)
  |> List.sort_uniq String.compare

(* The per-prototype check must reach the same verdict as flattening
   everything — on the clean generated layouts and on layouts with a
   violation buried inside a leaf celltype (where only the context
   windows can see cross-boundary interactions). *)
let test_hier_agrees_with_flat () =
  List.iter
    (fun (name, cell) ->
      let flat = Drc.check_cell cell in
      let hier = Drc.check_protos (Flatten.prototypes cell) in
      Alcotest.(check bool)
        (name ^ " verdict agrees")
        (flat.Drc.r_violations = [])
        (Drc.hier_clean hier);
      Alcotest.(check (list string))
        (name ^ " rule sets agree") (flat_rule_set flat) (hier_rule_set hier))
    (Lazy.force generated)

let mutated_families () =
  let tt = Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
  [ ("pla", (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell);
    ("mult4",
     (Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 ())
       .Rsg_mult.Layout_gen.whole) ]
  |> List.map (fun (name, cell) ->
         (* smash a leaf celltype: protos_order lists children first *)
         let leaf = List.hd (Flatten.protos_order (Flatten.prototypes cell)) in
         Cell.add_box leaf Layer.Metal (box 2000 2000 1 8);
         (name, cell))

let test_hier_agrees_on_mutants () =
  List.iter
    (fun (name, cell) ->
      let flat = Drc.check_cell cell in
      let hier = Drc.check_protos (Flatten.prototypes cell) in
      Alcotest.(check bool)
        (name ^ " mutant is dirty") false (Drc.hier_clean hier);
      Alcotest.(check bool)
        (name ^ " mutant counted") true (Drc.hier_violations hier > 0);
      Alcotest.(check (list string))
        (name ^ " mutant rule sets agree")
        (flat_rule_set flat) (hier_rule_set hier))
    (mutated_families ())

let test_hier_domains_identical () =
  List.iter
    (fun (name, cell) ->
      let protos = Flatten.prototypes cell in
      let seq = Drc.check_protos ~domains:1 protos in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s hier report identical at %d domains" name d)
            true
            (Drc.check_protos ~domains:d protos = seq))
        [ 2; 3 ])
    (mutated_families () @ Lazy.force generated)

(* ------------------------------------------------------------------ *)
(* Report rendering                                                   *)

let test_json_report () =
  let r =
    Drc.check ~deck:wdeck [| item Layer.Metal (box 0 0 2 10) |]
  in
  let j = Drc.report_to_json r in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and jl = String.length j in
        let rec go i = i + nl <= jl && (String.sub j i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("json contains " ^ needle) true found)
    [ "\"deck\":\"w\""; "\"rule\":\"width.metal\""; "\"required\":3";
      "\"boxes\":[[0,0,2,10]]" ]

let () =
  Alcotest.run "rsg_drc"
    [ ("deck",
       [ Alcotest.test_case "roundtrip" `Quick test_deck_roundtrip;
         Alcotest.test_case "parse" `Quick test_deck_parse;
         Alcotest.test_case "errors" `Quick test_deck_errors;
         Alcotest.test_case "accessors" `Quick test_deck_accessors;
         Alcotest.test_case "of_compact_rules" `Quick test_of_compact_rules ]);
      ("width",
       [ Alcotest.test_case "narrow box" `Quick test_width_narrow_box;
         Alcotest.test_case "narrow in y" `Quick test_width_narrow_in_y;
         Alcotest.test_case "merged fragments pass" `Quick
           test_width_merged_fragments_pass;
         Alcotest.test_case "wide cross passes" `Quick
           test_width_wide_cross_passes;
         Alcotest.test_case "thin neck caught" `Quick test_width_thin_neck_caught ]);
      ("spacing",
       [ Alcotest.test_case "close pair" `Quick test_spacing_close_pair;
         Alcotest.test_case "legal pair" `Quick test_spacing_legal_pair;
         Alcotest.test_case "same region exempt" `Quick
           test_spacing_same_region_exempt;
         Alcotest.test_case "corner exempt" `Quick test_spacing_corner_exempt;
         Alcotest.test_case "one per region pair" `Quick
           test_spacing_one_violation_per_region_pair;
         Alcotest.test_case "cross layer" `Quick test_spacing_cross_layer ]);
      ("enclosure",
       [ Alcotest.test_case "flush passes" `Quick test_enclosure_flush_passes;
         Alcotest.test_case "union coverage" `Quick test_enclosure_union_coverage;
         Alcotest.test_case "sticking out" `Quick test_enclosure_sticking_out;
         Alcotest.test_case "margin" `Quick test_enclosure_margin ]);
      ("overlap",
       [ Alcotest.test_case "short caught" `Quick test_overlap_short_caught;
         Alcotest.test_case "long passes" `Quick test_overlap_long_passes ]);
      ("generated",
       [ Alcotest.test_case "clean" `Quick test_generated_clean;
         Alcotest.test_case "compacted clean" `Quick test_compacted_clean ]);
      ("self-check",
       [ Alcotest.test_case "generated" `Quick test_self_check_generated;
         Alcotest.test_case "rejects dirty" `Quick test_self_check_rejects_dirty ]);
      ("domains",
       [ Alcotest.test_case "identical on clean" `Quick
           test_domains_identical_clean;
         Alcotest.test_case "identical on dirty" `Quick
           test_domains_identical_dirty ]);
      ("hierarchical",
       [ Alcotest.test_case "agrees with flat (clean)" `Quick
           test_hier_agrees_with_flat;
         Alcotest.test_case "agrees with flat (mutants)" `Quick
           test_hier_agrees_on_mutants;
         Alcotest.test_case "domains identical" `Quick
           test_hier_domains_identical ]);
      ("report", [ Alcotest.test_case "json" `Quick test_json_report ]) ]

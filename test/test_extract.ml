(* Tests for the EXCL-style extractor (reference [23]) and lambda
   scaling: nets, devices, terminals, and the generation->extraction
   loop on generated structures. *)

open Rsg_geom
open Rsg_layout
open Rsg_extract.Extract

let box x0 y0 x1 y1 = Box.make ~xmin:x0 ~ymin:y0 ~xmax:x1 ~ymax:y1

let item layer b = { Rsg_compact.Scanline.layer; box = b }

(* ------------------------------------------------------------------ *)
(* Nets and terminals                                                 *)

let test_nets_basic () =
  let items =
    [| item Layer.Metal (box 0 0 10 3);        (* net A *)
       item Layer.Metal (box 8 0 12 10);       (* touches -> net A *)
       item Layer.Metal (box 20 0 25 3);       (* net B *)
       item Layer.Poly (box 0 20 10 23) |]     (* net C (own layer) *)
  in
  let nl =
    of_items items
      [ ("a1", Vec.make 1 1); ("a2", Vec.make 11 8); ("b", Vec.make 22 1);
        ("c", Vec.make 5 21); ("nowhere", Vec.make 100 100) ]
  in
  Alcotest.(check int) "three nets" 3 nl.n_nets;
  Alcotest.(check bool) "a1-a2 connected" true (connected nl "a1" "a2");
  Alcotest.(check bool) "a1-b separate" false (connected nl "a1" "b");
  Alcotest.(check bool) "a1-c separate" false (connected nl "a1" "c");
  Alcotest.(check (option int)) "label off geometry" None
    (net_of_terminal nl "nowhere")

let test_contact_joins_layers () =
  (* metal - contact - poly is one net *)
  let items =
    [| item Layer.Metal (box 0 0 10 4);
       item Layer.Contact (box 2 0 6 10);
       item Layer.Poly (box 0 6 10 10) |]
  in
  let nl = of_items items [ ("m", Vec.make 9 2); ("p", Vec.make 9 9) ] in
  Alcotest.(check int) "one net" 1 nl.n_nets;
  Alcotest.(check bool) "metal-poly via contact" true (connected nl "m" "p")

let test_poly_diff_do_not_join () =
  let items =
    [| item Layer.Poly (box 0 4 20 8); item Layer.Diffusion (box 8 0 12 12) |]
  in
  let nl = of_items items [] in
  Alcotest.(check int) "two nets" 2 nl.n_nets

(* ------------------------------------------------------------------ *)
(* Devices                                                            *)

let test_single_transistor () =
  let items =
    [| item Layer.Poly (box 0 4 20 8); item Layer.Diffusion (box 8 0 12 12) |]
  in
  let nl = of_items items [] in
  Alcotest.(check int) "one device" 1 (n_devices nl);
  match nl.devices with
  | [ d ] -> Alcotest.(check bool) "gate region" true
      (Box.equal d.gate (box 8 4 12 8))
  | _ -> Alcotest.fail "expected one device"

let test_fragmented_gate_merges () =
  (* the diffusion is drawn in two abutting pieces: still one
     transistor *)
  let items =
    [| item Layer.Poly (box 0 4 20 8);
       item Layer.Diffusion (box 8 0 12 6);
       item Layer.Diffusion (box 8 6 12 12) |]
  in
  let nl = of_items items [] in
  Alcotest.(check int) "merged to one device" 1 (n_devices nl)

let test_two_transistors_one_gate_line () =
  (* one poly line crossing two separate diffusions: two devices *)
  let items =
    [| item Layer.Poly (box 0 4 40 8);
       item Layer.Diffusion (box 5 0 10 12);
       item Layer.Diffusion (box 25 0 30 12) |]
  in
  let nl = of_items items [] in
  Alcotest.(check int) "two devices" 2 (n_devices nl)

let test_edge_touch_is_not_a_device () =
  let items =
    [| item Layer.Poly (box 0 4 8 8); item Layer.Diffusion (box 8 0 12 12) |]
  in
  Alcotest.(check int) "no device" 0 (n_devices (of_items items []))

(* ------------------------------------------------------------------ *)
(* Generation -> extraction loop                                      *)

let test_basic_cell_census () =
  (* the multiplier's basic cell draws four transistors *)
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let basic = Db.find_exn sample.Rsg_core.Sample.db Rsg_mult.Sample_lib.basic_cell in
  Alcotest.(check int) "4 transistors in the basic cell" 4
    (n_devices (of_cell basic))

let test_multiplier_census_follows_personality () =
  (* four transistors per basic cell; the clock/carry masks' poly
     lands touching the core gates and merges into them (one
     continuous gate region), so personalisation leaves the count at
     exactly 4 per cell at every array size *)
  List.iter
    (fun (xsize, ysize) ->
      let g = Rsg_mult.Layout_gen.generate ~xsize ~ysize () in
      let nl = of_cell g.Rsg_mult.Layout_gen.array_cell in
      let cells = xsize * (ysize + 1) in
      Alcotest.(check int)
        (Printf.sprintf "%dx%d census" xsize ysize)
        (cells * 4) (n_devices nl))
    [ (2, 2); (3, 3); (4, 2) ]

let test_whole_multiplier_netlist () =
  (* Pinned node/edge counts for the complete multiplier (array plus
     register banks).  These are regression anchors: the array
     contributes 4 transistors per cell (xsize * (ysize+1) cells), the
     peripheral registers one each, and any change to the sample
     library or the generator that perturbs connectivity shows up here
     as a net- or device-count drift. *)
  List.iter
    (fun (xsize, ysize, exp_nets, exp_devices) ->
      let g = Rsg_mult.Layout_gen.generate ~xsize ~ysize () in
      let nl = of_cell g.Rsg_mult.Layout_gen.whole in
      Alcotest.(check int)
        (Printf.sprintf "%dx%d nets" xsize ysize)
        exp_nets nl.n_nets;
      Alcotest.(check int)
        (Printf.sprintf "%dx%d devices" xsize ysize)
        exp_devices (n_devices nl);
      (* every device's gate lies on both a poly and a diffusion item:
         the extractor's edges are well-formed *)
      List.iter
        (fun d ->
          let on layer =
            Array.exists
              (fun (it : Rsg_compact.Scanline.item) ->
                it.Rsg_compact.Scanline.layer = layer
                && Box.overlaps it.Rsg_compact.Scanline.box d.gate)
              nl.items
          in
          Alcotest.(check bool) "gate on poly" true (on Layer.Poly);
          Alcotest.(check bool) "gate on diffusion" true (on Layer.Diffusion))
        nl.devices)
    [ (2, 2, 78, 38); (3, 3, 155, 78); (4, 4, 250, 128) ]

let test_pla_census () =
  (* connect-ao contributes no poly; crosspoints carry no poly over
     diffusion; inbuf draws two poly columns over its diffusion *)
  let tt = Rsg_pla.Truth_table.of_strings [ ("10", "10"); ("01", "01") ] in
  let p = Rsg_pla.Gen.generate tt in
  let nl = of_cell p.Rsg_pla.Gen.cell in
  Alcotest.(check int) "2 inbufs x 2 gates" 4 (n_devices nl)

(* ------------------------------------------------------------------ *)
(* Scaling                                                            *)

let test_scale_simple () =
  let c = Cell.create "unit" in
  Cell.add_box c Layer.Metal (box 1 2 5 9);
  Cell.add_label c "x" (Vec.make 3 4);
  let c2 = Scale.cell ~num:2 c in
  Alcotest.(check string) "renamed" "unit-s2" c2.Cell.cname;
  (match Cell.boxes c2 with
  | [ (_, b) ] -> Alcotest.(check bool) "doubled" true (Box.equal b (box 2 4 10 18))
  | _ -> Alcotest.fail "one box");
  match Cell.labels c2 with
  | [ l ] -> Alcotest.(check bool) "label moved" true (Vec.equal l.Cell.at (Vec.make 6 8))
  | _ -> Alcotest.fail "one label"

let test_scale_hierarchy_shares () =
  let leaf = Cell.create "leaf" in
  Cell.add_box leaf Layer.Poly (box 0 0 4 4);
  let top = Cell.create "top" in
  ignore (Cell.add_instance top ~at:(Vec.make 0 0) leaf);
  ignore (Cell.add_instance top ~at:(Vec.make 10 0) leaf);
  let top3 = Scale.cell ~num:3 top in
  (match Cell.instances top3 with
  | [ i1; i2 ] ->
    Alcotest.(check bool) "definition shared" true (i1.Cell.def == i2.Cell.def);
    Alcotest.(check bool) "offset scaled" true
      (Vec.equal i2.Cell.point_of_call (Vec.make 30 0))
  | _ -> Alcotest.fail "two instances");
  (* flattened geometry equals scaling the flattened original *)
  let f = Flatten.flatten top and f3 = Flatten.flatten top3 in
  let scaled =
    Array.map (fun (l, b) -> (l, Scale.box ~num:3 ~den:1 b)) f.Flatten.flat_boxes
  in
  Alcotest.(check bool) "flatten commutes" true (scaled = f3.Flatten.flat_boxes)

let test_scale_down_and_inexact () =
  let c = Cell.create "even" in
  Cell.add_box c Layer.Metal (box 0 0 4 8);
  let half = Scale.cell ~num:1 ~den:2 c in
  (match Cell.boxes half with
  | [ (_, b) ] -> Alcotest.(check bool) "halved" true (Box.equal b (box 0 0 2 4))
  | _ -> Alcotest.fail "one box");
  let odd = Cell.create "odd" in
  Cell.add_box odd Layer.Metal (box 0 0 3 3);
  Alcotest.(check bool) "inexact raises" true
    (try ignore (Scale.cell ~num:1 ~den:2 odd); false
     with Scale.Inexact _ -> true);
  Alcotest.(check bool) "bad factor" true
    (try ignore (Scale.cell ~num:0 c); false with Invalid_argument _ -> true)

let test_scaled_multiplier_extracts_identically () =
  (* a technology shrink keeps the netlist: same nets, same devices *)
  let g = Rsg_mult.Layout_gen.generate ~xsize:2 ~ysize:2 () in
  let nl = of_cell g.Rsg_mult.Layout_gen.array_cell in
  let nl2 = of_cell (Scale.cell ~num:2 g.Rsg_mult.Layout_gen.array_cell) in
  Alcotest.(check int) "same nets" nl.n_nets nl2.n_nets;
  Alcotest.(check int) "same devices" (n_devices nl) (n_devices nl2)

(* ------------------------------------------------------------------ *)
(* Parallel determinism                                               *)

let test_domains_identical () =
  List.iter
    (fun (name, cell) ->
      let seq = of_cell ~domains:1 cell in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s netlist identical at %d domains" name d)
            true
            (of_cell ~domains:d cell = seq))
        [ 2; 3 ])
    [ ("mult6",
       (Rsg_mult.Layout_gen.generate ~xsize:6 ~ysize:6 ())
         .Rsg_mult.Layout_gen.whole);
      ("ram8x4",
       (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell) ]

(* ------------------------------------------------------------------ *)
(* Typed terminal errors                                               *)

let test_unknown_terminal_each_side () =
  let items = [| item Layer.Metal (box 0 0 10 3) |] in
  let nl = of_items items [ ("a", Vec.make 1 1); ("off", Vec.make 50 50) ] in
  let expect_unknown label f =
    match f () with
    | (_ : bool) ->
        Alcotest.fail (Printf.sprintf "expected Unknown_terminal %s" label)
    | exception Unknown_terminal l ->
        Alcotest.(check string) "offending label" label l
  in
  (* left argument missing *)
  expect_unknown "ghost" (fun () -> connected nl "ghost" "a");
  (* right argument missing *)
  expect_unknown "ghost" (fun () -> connected nl "a" "ghost");
  (* a label placed over no conductor is just as unknown *)
  expect_unknown "off" (fun () -> connected nl "a" "off");
  (* both missing: the left argument is named first *)
  expect_unknown "gone" (fun () -> connected nl "gone" "ghost")

(* ------------------------------------------------------------------ *)
(* MOS triples (split-diffusion extraction)                            *)

let test_mos_triple_basic () =
  (* poly crosses the diffusion fully: source and drain resolve to two
     distinct diffusion nets, and the gate to the poly net *)
  let items =
    [| item Layer.Poly (box 0 4 20 8); item Layer.Diffusion (box 8 0 12 12) |]
  in
  let mn =
    mos_of_items items [ ("g", Vec.make 1 6); ("s", Vec.make 9 1);
                         ("d", Vec.make 9 11) ]
  in
  Alcotest.(check int) "one mos" 1 (n_mos mn);
  let m = mn.mn_mos.(0) in
  Alcotest.(check bool) "gate region" true (Box.equal m.m_gate (box 8 4 12 8));
  Alcotest.(check (option int)) "gate is the poly net"
    (List.assoc_opt "g" mn.mn_terminals) (Some m.m_gate_net);
  (match (m.m_source, m.m_drain) with
  | Some s, Some d ->
      Alcotest.(check bool) "source <> drain" true (s <> d);
      Alcotest.(check (option int)) "source label"
        (List.assoc_opt "s" mn.mn_terminals) (Some s);
      Alcotest.(check (option int)) "drain label"
        (List.assoc_opt "d" mn.mn_terminals) (Some d)
  | _ -> Alcotest.fail "expected both source and drain resolved");
  Alcotest.(check int) "channel splits off two diffusion nets: p+s+d" 3
    mn.mn_n_nets

let test_mos_dangling_side () =
  (* the gate runs to the bottom edge of the diffusion: no source
     fragment survives below it *)
  let items =
    [| item Layer.Poly (box 0 0 20 4); item Layer.Diffusion (box 8 0 12 12) |]
  in
  let mn = mos_of_items items [] in
  Alcotest.(check int) "one mos" 1 (n_mos mn);
  let m = mn.mn_mos.(0) in
  Alcotest.(check bool) "below side dangles" true (m.m_source = None);
  Alcotest.(check bool) "above side resolves" true (m.m_drain <> None)

let test_mos_census_matches_devices () =
  List.iter
    (fun (name, cell) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: n_mos = n_devices" name)
        (n_devices (of_cell cell))
        (n_mos (mos_of_cell cell)))
    [ ("mult4",
       (Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 ())
         .Rsg_mult.Layout_gen.whole);
      ("pla",
       (Rsg_pla.Gen.generate
          (Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]))
         .Rsg_pla.Gen.cell);
      ("decoder", (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell) ]

let test_mos_domains_identical () =
  let cell =
    (Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 ())
      .Rsg_mult.Layout_gen.whole
  in
  let seq = mos_of_cell ~domains:1 cell in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "mos netlist identical at %d domains" d)
        true
        (mos_of_cell ~domains:d cell = seq))
    [ 2; 4 ]

let () =
  Alcotest.run "rsg_extract"
    [ ("nets",
       [ Alcotest.test_case "basics" `Quick test_nets_basic;
         Alcotest.test_case "contact joins layers" `Quick
           test_contact_joins_layers;
         Alcotest.test_case "poly-diff separate" `Quick
           test_poly_diff_do_not_join ]);
      ("devices",
       [ Alcotest.test_case "single transistor" `Quick test_single_transistor;
         Alcotest.test_case "fragmented gate merges" `Quick
           test_fragmented_gate_merges;
         Alcotest.test_case "two on one line" `Quick
           test_two_transistors_one_gate_line;
         Alcotest.test_case "edge touch" `Quick test_edge_touch_is_not_a_device ]);
      ("generated",
       [ Alcotest.test_case "basic cell census" `Quick test_basic_cell_census;
         Alcotest.test_case "multiplier census" `Quick
           test_multiplier_census_follows_personality;
         Alcotest.test_case "whole multiplier netlist" `Quick
           test_whole_multiplier_netlist;
         Alcotest.test_case "pla census" `Quick test_pla_census ]);
      ("scale",
       [ Alcotest.test_case "simple" `Quick test_scale_simple;
         Alcotest.test_case "hierarchy shares" `Quick
           test_scale_hierarchy_shares;
         Alcotest.test_case "down + inexact" `Quick test_scale_down_and_inexact;
         Alcotest.test_case "shrunk multiplier netlist" `Quick
           test_scaled_multiplier_extracts_identically ]);
      ("errors",
       [ Alcotest.test_case "unknown terminal, each side" `Quick
           test_unknown_terminal_each_side ]);
      ("mos",
       [ Alcotest.test_case "triple basic" `Quick test_mos_triple_basic;
         Alcotest.test_case "dangling side" `Quick test_mos_dangling_side;
         Alcotest.test_case "census matches devices" `Quick
           test_mos_census_matches_devices;
         Alcotest.test_case "identical across domains" `Quick
           test_mos_domains_identical ]);
      ("domains",
       [ Alcotest.test_case "netlist identical" `Quick test_domains_identical ]) ]

(* Tests for the geometry substrate: vectors, boxes, the D4 orientation
   group of section 2.6 and full transforms. *)

open Rsg_geom

let vec = Alcotest.testable Vec.pp Vec.equal

let box = Alcotest.testable Box.pp Box.equal

let orient = Alcotest.testable Orient.pp Orient.equal

let transform = Alcotest.testable Transform.pp Transform.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)

let gen_orient = QCheck.map ~rev:Orient.to_index Orient.of_index (QCheck.int_range 0 7)

let gen_vec =
  QCheck.map
    ~rev:(fun (v : Vec.t) -> (v.Vec.x, v.Vec.y))
    (fun (x, y) -> Vec.make x y)
    (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50))

let gen_transform =
  QCheck.map
    (fun (o, v) -> Transform.{ orient = o; offset = v })
    (QCheck.pair gen_orient gen_vec)

let gen_box =
  QCheck.map
    (fun ((x, y), (w, h)) -> Box.of_size ~origin:(Vec.make x y) ~width:w ~height:h)
    (QCheck.pair
       (QCheck.pair (QCheck.int_range (-40) 40) (QCheck.int_range (-40) 40))
       (QCheck.pair (QCheck.int_range 0 30) (QCheck.int_range 0 30)))

let prop name ?(count = 500) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Vec unit tests                                                     *)

let test_vec_basics () =
  Alcotest.(check vec) "add" (Vec.make 3 5) (Vec.add (Vec.make 1 2) (Vec.make 2 3));
  Alcotest.(check vec) "sub" (Vec.make (-1) (-1))
    (Vec.sub (Vec.make 1 2) (Vec.make 2 3));
  Alcotest.(check vec) "neg" (Vec.make (-1) 2) (Vec.neg (Vec.make 1 (-2)));
  Alcotest.(check vec) "scale" (Vec.make 4 (-6)) (Vec.scale 2 (Vec.make 2 (-3)));
  Alcotest.(check int) "dot" 11 (Vec.dot (Vec.make 1 2) (Vec.make 3 4));
  Alcotest.(check int) "norm2" 25 (Vec.norm2 (Vec.make 3 4));
  Alcotest.(check int) "manhattan" 7 (Vec.manhattan (Vec.make (-3) 4))

(* ------------------------------------------------------------------ *)
(* Figure 2.5: coordinate mapping of the four basic rotations.        *)

let test_fig_2_5 () =
  let check o ex ey =
    Alcotest.(check vec)
      (Orient.name o)
      (Vec.make ex ey)
      (Orient.apply o (Vec.make 2 3))
  in
  (* With (x, y) = (2, 3):
     North -> ( x,  y); South -> (-x, -y);
     East  -> ( y, -x); West  -> (-y,  x).   [Figure 2.5] *)
  check Orient.north 2 3;
  check Orient.south (-2) (-3);
  check Orient.east 3 (-2);
  check Orient.west (-3) 2

let test_named_orients () =
  Alcotest.(check vec) "mirror_y flips x" (Vec.make (-2) 3)
    (Orient.apply Orient.mirror_y (Vec.make 2 3));
  Alcotest.(check vec) "mirror_x flips y" (Vec.make 2 (-3))
    (Orient.apply Orient.mirror_x (Vec.make 2 3));
  Alcotest.(check int) "eight orientations" 8 (List.length Orient.all);
  List.iter
    (fun o ->
      Alcotest.(check (option orient)) "name round trip" (Some o)
        (Orient.of_name (Orient.name o)))
    Orient.all

(* ------------------------------------------------------------------ *)
(* D4 group laws (property tests)                                     *)

let suite_group =
  [ prop "compose agrees with apply" (QCheck.triple gen_orient gen_orient gen_vec)
      (fun (o2, o1, v) ->
        Vec.equal
          (Orient.apply (Orient.compose o2 o1) v)
          (Orient.apply o2 (Orient.apply o1 v)));
    prop "identity is neutral" gen_orient (fun o ->
        Orient.equal (Orient.compose o Orient.identity) o
        && Orient.equal (Orient.compose Orient.identity o) o);
    prop "inverse cancels" gen_orient (fun o ->
        Orient.equal (Orient.compose o (Orient.invert o)) Orient.identity
        && Orient.equal (Orient.compose (Orient.invert o) o) Orient.identity);
    prop "associativity" (QCheck.triple gen_orient gen_orient gen_orient)
      (fun (a, b, c) ->
        Orient.equal
          (Orient.compose a (Orient.compose b c))
          (Orient.compose (Orient.compose a b) c));
    prop "reflections are involutions" gen_orient (fun o ->
        (not (Orient.is_reflection o)) || Orient.equal (Orient.invert o) o);
    prop "apply preserves norm" (QCheck.pair gen_orient gen_vec) (fun (o, v) ->
        Vec.norm2 (Orient.apply o v) = Vec.norm2 v);
    prop "index round trip" gen_orient (fun o ->
        Orient.equal (Orient.of_index (Orient.to_index o)) o) ]

(* ------------------------------------------------------------------ *)
(* Matrix representation isomorphism (section 2.6 ablation)           *)

let suite_matrix =
  [ prop "of_orient/to_orient round trip" gen_orient (fun o ->
        Orient.equal (Matrix_orient.to_orient (Matrix_orient.of_orient o)) o);
    prop "matrix compose is a homomorphism" (QCheck.pair gen_orient gen_orient)
      (fun (a, b) ->
        Matrix_orient.equal
          (Matrix_orient.of_orient (Orient.compose a b))
          (Matrix_orient.compose (Matrix_orient.of_orient a)
             (Matrix_orient.of_orient b)));
    prop "matrix invert agrees" gen_orient (fun o ->
        Matrix_orient.equal
          (Matrix_orient.of_orient (Orient.invert o))
          (Matrix_orient.invert (Matrix_orient.of_orient o)));
    prop "matrix apply agrees" (QCheck.pair gen_orient gen_vec) (fun (o, v) ->
        Vec.equal (Orient.apply o v) (Matrix_orient.apply (Matrix_orient.of_orient o) v)) ]

(* ------------------------------------------------------------------ *)
(* Boxes                                                              *)

let test_box_basics () =
  let b = Box.make ~xmin:5 ~ymin:7 ~xmax:1 ~ymax:2 in
  Alcotest.(check box) "normalised" (Box.make ~xmin:1 ~ymin:2 ~xmax:5 ~ymax:7) b;
  Alcotest.(check int) "width" 4 (Box.width b);
  Alcotest.(check int) "height" 5 (Box.height b);
  Alcotest.(check int) "area" 20 (Box.area b);
  Alcotest.(check bool) "contains corner" true (Box.contains b (Vec.make 1 2));
  Alcotest.(check bool) "contains outside" false (Box.contains b (Vec.make 0 2));
  let c = Box.make ~xmin:4 ~ymin:0 ~xmax:9 ~ymax:3 in
  Alcotest.(check (option box)) "intersect"
    (Some (Box.make ~xmin:4 ~ymin:2 ~xmax:5 ~ymax:3))
    (Box.intersect b c);
  Alcotest.(check box) "union" (Box.make ~xmin:1 ~ymin:0 ~xmax:9 ~ymax:7)
    (Box.union b c);
  (* Chebyshev separation: diagonal neighbours count the larger gap *)
  let d = Box.make ~xmin:8 ~ymin:10 ~xmax:12 ~ymax:14 in
  Alcotest.(check int) "distance diagonal" 3 (Box.distance b d);
  Alcotest.(check int) "distance overlapping" 0 (Box.distance b c);
  Alcotest.(check int) "distance touching" 0
    (Box.distance b (Box.make ~xmin:5 ~ymin:2 ~xmax:9 ~ymax:7))

let suite_box =
  [ prop "transform preserves area" (QCheck.pair gen_orient gen_box)
      (fun (o, b) -> Box.area (Box.transform o b) = Box.area b);
    prop "transform round trips via inverse" (QCheck.pair gen_orient gen_box)
      (fun (o, b) ->
        Box.equal (Box.transform (Orient.invert o) (Box.transform o b)) b);
    prop "transform maps contained points" (QCheck.triple gen_orient gen_box gen_vec)
      (fun (o, b, v) ->
        QCheck.assume (Box.contains b v);
        Box.contains (Box.transform o b) (Orient.apply o v));
    prop "union contains both" (QCheck.pair gen_box gen_box) (fun (a, b) ->
        let u = Box.union a b in
        Box.contains u (Vec.make a.Box.xmin a.Box.ymin)
        && Box.contains u (Vec.make b.Box.xmax b.Box.ymax));
    prop "intersect symmetric" (QCheck.pair gen_box gen_box) (fun (a, b) ->
        Box.intersect a b = Box.intersect b a);
    prop "overlaps iff intersect" (QCheck.pair gen_box gen_box) (fun (a, b) ->
        Box.overlaps a b = Option.is_some (Box.intersect a b));
    prop "intersect is contained in both" (QCheck.pair gen_box gen_box)
      (fun (a, b) ->
        match Box.intersect a b with
        | None -> true
        | Some i ->
          Box.equal (Box.union a i) a && Box.equal (Box.union b i) b);
    prop "intersect idempotent" gen_box (fun b ->
        Box.intersect b b = Some b);
    prop "distance symmetric" (QCheck.pair gen_box gen_box) (fun (a, b) ->
        Box.distance a b = Box.distance b a);
    prop "distance zero iff touching" (QCheck.pair gen_box gen_box)
      (fun (a, b) ->
        (Box.distance a b = 0) = Box.overlaps (Box.inflate 0 a) b);
    prop "subtract conserves area" (QCheck.pair gen_box gen_box)
      (fun (a, b) ->
        let removed =
          match Box.intersect a b with
          | Some c when Box.width c > 0 && Box.height c > 0 -> Box.area c
          | _ -> 0
        in
        List.fold_left (fun s p -> s + Box.area p) 0 (Box.subtract a b)
        = Box.area a - removed);
    prop "subtract pieces are disjoint and inside" (QCheck.pair gen_box gen_box)
      (fun (a, b) ->
        let pieces = Box.subtract a b in
        let proper p q =
          match Box.intersect p q with
          | Some c -> Box.width c > 0 && Box.height c > 0
          | None -> false
        in
        List.for_all
          (fun p -> Box.equal (Box.union a p) a && not (proper p b))
          pieces
        && List.for_all
             (fun p ->
               List.for_all (fun q -> p == q || not (proper p q)) pieces)
             pieces);
    prop "subtract covers every surviving point"
      (QCheck.triple gen_box gen_box gen_vec) (fun (a, b, v) ->
        QCheck.assume (Box.contains a v);
        let inside p =
          (* strictly interior, so box seams never double-count *)
          p.Box.xmin < v.Vec.x && v.Vec.x < p.Box.xmax && p.Box.ymin < v.Vec.y
          && v.Vec.y < p.Box.ymax
        in
        QCheck.assume (inside a);
        let n = List.length (List.filter inside (Box.subtract a b)) in
        if inside b then n = 0 else n = 1);
    prop "edge touch removes nothing" (QCheck.pair gen_box gen_box)
      (fun (a, b) ->
        QCheck.assume
          (match Box.intersect a b with
          | Some c -> Box.width c = 0 || Box.height c = 0
          | None -> true);
        Box.subtract a b = [ a ]);
    prop "distance k iff inflate k overlaps"
      (QCheck.triple gen_box gen_box (QCheck.int_range 0 20))
      (fun (a, b, k) ->
        (Box.distance a b <= k) = Box.overlaps (Box.inflate k a) b);
    prop "inflate grows each side by k"
      (QCheck.pair gen_box (QCheck.int_range 0 20)) (fun (b, k) ->
        let i = Box.inflate k b in
        Box.width i = Box.width b + (2 * k)
        && Box.height i = Box.height b + (2 * k)
        && i.Box.xmin = b.Box.xmin - k
        && i.Box.ymin = b.Box.ymin - k);
    prop "inflate composes additively"
      (QCheck.triple gen_box (QCheck.int_range 0 10) (QCheck.int_range 0 10))
      (fun (b, j, k) ->
        Box.equal (Box.inflate j (Box.inflate k b)) (Box.inflate (j + k) b)) ]

(* ------------------------------------------------------------------ *)
(* Transforms                                                         *)

let suite_transform =
  [ prop "compose agrees with apply"
      (QCheck.triple gen_transform gen_transform gen_vec) (fun (t2, t1, v) ->
        Vec.equal
          (Transform.apply (Transform.compose t2 t1) v)
          (Transform.apply t2 (Transform.apply t1 v)));
    prop "invert cancels" (QCheck.pair gen_transform gen_vec) (fun (t, v) ->
        Vec.equal (Transform.apply (Transform.invert t) (Transform.apply t v)) v);
    prop "identity neutral" gen_transform (fun t ->
        Transform.equal (Transform.compose t Transform.identity) t
        && Transform.equal (Transform.compose Transform.identity t) t);
    prop "apply_box consistent with corners"
      (QCheck.pair gen_transform gen_box) (fun (t, b) ->
        let tb = Transform.apply_box t b in
        Box.equal tb
          (Box.of_corners
             (Transform.apply t (Vec.make b.Box.xmin b.Box.ymin))
             (Transform.apply t (Vec.make b.Box.xmax b.Box.ymax)))) ]

let test_transform_example () =
  (* Rotate east about origin then shift by (10, 0): the point (1, 0)
     must land at (10, -1) since east maps (x,y) -> (y,-x). *)
  let t = Transform.{ orient = Orient.east; offset = Vec.make 10 0 } in
  Alcotest.(check vec) "east+shift" (Vec.make 10 (-1))
    (Transform.apply t (Vec.make 1 0));
  Alcotest.(check transform) "invert . compose = id" Transform.identity
    (Transform.compose (Transform.invert t) t)

(* The full 8x8 Cayley table of D4, checked exactly against matrix
   multiplication — the section 2.6.2 composition rules, exhaustively. *)
let test_cayley_table () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let via_rules = Orient.compose a b in
          let via_matrices =
            Matrix_orient.to_orient
              (Matrix_orient.compose (Matrix_orient.of_orient a)
                 (Matrix_orient.of_orient b))
          in
          Alcotest.(check orient)
            (Orient.name a ^ " o " ^ Orient.name b)
            via_matrices via_rules)
        Orient.all)
    Orient.all

(* Exhaustive D4 group laws: every law checked over all 8x8 pairs
   (and all 8x8x8 triples for associativity), not just sampled. *)
let test_d4_laws () =
  let sample_vecs =
    [ Vec.make 0 0; Vec.make 1 0; Vec.make 0 1; Vec.make 2 3; Vec.make (-5) 7 ]
  in
  List.iter
    (fun a ->
      (* invert is a two-sided inverse *)
      Alcotest.(check orient)
        ("right inverse of " ^ Orient.name a)
        Orient.identity
        (Orient.compose a (Orient.invert a));
      Alcotest.(check orient)
        ("left inverse of " ^ Orient.name a)
        Orient.identity
        (Orient.compose (Orient.invert a) a);
      (* of_name round-trips *)
      Alcotest.(check (option orient))
        ("of_name (name " ^ Orient.name a ^ ")")
        (Some a)
        (Orient.of_name (Orient.name a));
      List.iter
        (fun b ->
          (* apply is a homomorphism: D4 acting on Z^2 *)
          List.iter
            (fun v ->
              Alcotest.(check vec)
                (Printf.sprintf "apply (%s o %s)" (Orient.name a) (Orient.name b))
                (Orient.apply a (Orient.apply b v))
                (Orient.apply (Orient.compose a b) v))
            sample_vecs;
          (* compose is associative, all 512 triples *)
          List.iter
            (fun c ->
              Alcotest.(check orient)
                (Printf.sprintf "(%s o %s) o %s" (Orient.name a) (Orient.name b)
                   (Orient.name c))
                (Orient.compose a (Orient.compose b c))
                (Orient.compose (Orient.compose a b) c))
            Orient.all)
        Orient.all)
    Orient.all

let test_group_structure () =
  (* D4 facts: 2 rotations of order 4, 5 involutions besides identity *)
  let order o =
    let rec go k acc =
      if Orient.equal acc Orient.identity then k
      else go (k + 1) (Orient.compose o acc)
    in
    go 1 o
  in
  let orders = List.map order Orient.all |> List.sort compare in
  Alcotest.(check (list int)) "element orders" [ 1; 2; 2; 2; 2; 2; 4; 4 ]
    orders

let () =
  Alcotest.run "rsg_geom"
    [ ("vec", [ Alcotest.test_case "basics" `Quick test_vec_basics ]);
      ("orient-fig2.5",
       [ Alcotest.test_case "rotation table" `Quick test_fig_2_5;
         Alcotest.test_case "named orientations" `Quick test_named_orients ]);
      ("orient-group",
       Alcotest.test_case "cayley table" `Quick test_cayley_table
       :: Alcotest.test_case "group structure" `Quick test_group_structure
       :: Alcotest.test_case "exhaustive D4 laws" `Quick test_d4_laws
       :: suite_group);
      ("orient-matrix", suite_matrix);
      ("box",
       Alcotest.test_case "basics" `Quick test_box_basics :: suite_box);
      ("transform",
       Alcotest.test_case "example" `Quick test_transform_example
       :: suite_transform) ]

(* Tests for the Figure 1.2 baselines: the shift-add datapath model
   with its PLA controller, the canonical-architecture compiler, and
   the specialised module generator. *)

open Rsg_geom
open Rsg_layout
open Rsg_baseline

let test_shift_add_exhaustive () =
  for a = -16 to 15 do
    for b = -8 to 7 do
      let t = Shift_add.multiply ~m:5 ~n:4 a b in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
        t.Shift_add.product;
      Alcotest.(check int) "cycles" (Shift_add.cycles_per_multiply ~n:4)
        t.Shift_add.cycles
    done
  done

let prop_shift_add_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"8x8 shift-add equals product"
       (QCheck.pair (QCheck.int_range (-128) 127) (QCheck.int_range (-128) 127))
       (fun (a, b) ->
         (Shift_add.multiply ~m:8 ~n:8 a b).Shift_add.product = a * b))

let test_control_table_is_a_pla () =
  (* the controller personality runs through the actual PLA generator
     and verifies by extraction *)
  let tt = Shift_add.control_table ~n:6 in
  let g = Rsg_pla.Gen.generate tt in
  Alcotest.(check bool) "controller PLA verifies" true (Rsg_pla.Gen.verify g)

let test_canonical_structure () =
  let c = Canonical.generate ~m:6 ~n:6 in
  Alcotest.(check int) "three full words of slices" (3 * 12)
    c.Canonical.slices;
  let s = Flatten.stats c.Canonical.datapath in
  Alcotest.(check (list (pair string int))) "datapath census"
    [ ("dp-slice", 36) ]
    s.Flatten.by_cell;
  Alcotest.(check int) "cycles" 7 c.Canonical.cycles_per_multiply;
  Alcotest.(check bool) "area positive" true (c.Canonical.area > 0)

let test_specialized_structure () =
  let xsize = 5 and ysize = 4 in
  let t = Specialized.generate ~xsize ~ysize in
  let counts = Specialized.variants ~xsize ~ysize in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Alcotest.(check int) "all cells placed" (xsize * (ysize + 1)) total;
  (* fused type2 cells where the personalisation rule says so *)
  let t2 =
    List.fold_left
      (fun acc (name, n) ->
        if String.length name >= 6 && String.sub name 4 2 = "t2" then acc + n
        else acc)
      0 counts
  in
  Alcotest.(check int) "type2 count" (xsize + ysize - 2) t2;
  (* tight pitch: bounding box exactly the array extent *)
  match Cell.bbox t.Specialized.cell with
  | Some b ->
    Alcotest.(check int) "width" (xsize * Specialized.cell_width) (Box.width b);
    Alcotest.(check int) "height"
      ((ysize + 1) * Specialized.cell_height)
      (Box.height b)
  | None -> Alcotest.fail "empty layout"

let test_fig_1_2_shape () =
  (* the qualitative claim: canonical-architecture silicon-time per
     multiply is several times the matched architectures'; the RSG is
     close to the specialised generator *)
  let xsize = 8 and ysize = 8 in
  let c = Canonical.generate ~m:xsize ~n:ysize in
  let s = Specialized.generate ~xsize ~ysize in
  let g = Rsg_mult.Layout_gen.generate ~xsize ~ysize () in
  let rsg_array_area =
    match Cell.bbox g.Rsg_mult.Layout_gen.array_cell with
    | Some b -> Box.area b
    | None -> 0
  in
  let canonical_st = c.Canonical.area * c.Canonical.cycles_per_multiply in
  Alcotest.(check bool) "canonical at least 4x the RSG array" true
    (canonical_st > 4 * rsg_array_area);
  Alcotest.(check bool) "rsg within 2x of specialised" true
    (rsg_array_area < 2 * s.Specialized.area);
  Alcotest.(check bool) "specialised is denser" true
    (s.Specialized.area < rsg_array_area)

let () =
  Alcotest.run "rsg_baseline"
    [ ("shift-add",
       [ Alcotest.test_case "exhaustive 5x4" `Slow test_shift_add_exhaustive;
         prop_shift_add_random;
         Alcotest.test_case "controller is a PLA" `Quick
           test_control_table_is_a_pla ]);
      ("canonical",
       [ Alcotest.test_case "structure" `Quick test_canonical_structure ]);
      ("specialized",
       [ Alcotest.test_case "structure" `Quick test_specialized_structure ]);
      ("fig1.2",
       [ Alcotest.test_case "shape" `Quick test_fig_1_2_shape ]) ]

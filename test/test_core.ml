(* Tests for the RSG core: interfaces (Chapter 2), the interface table,
   connectivity graphs and graph expansion (Chapter 3), and sample
   extraction. *)

open Rsg_geom
open Rsg_layout
open Rsg_core

let transform = Alcotest.testable Transform.pp Transform.equal

let iface = Alcotest.testable Interface.pp Interface.equal

let gen_orient = QCheck.map Orient.of_index (QCheck.int_range 0 7)

let gen_vec =
  QCheck.map
    (fun (x, y) -> Vec.make x y)
    (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50))

let gen_transform =
  QCheck.map
    (fun (o, v) -> Transform.{ orient = o; offset = v })
    (QCheck.pair gen_orient gen_vec)

let prop name ?(count = 500) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Interface algebra                                                  *)

let suite_interface =
  [ (* The defining property: deskewing A to north must make place
       recover B's placement from A's (eqs 2.1/2.2 vs 3.1/3.2). *)
    prop "of_placements / place round trip"
      (QCheck.pair gen_transform gen_transform) (fun (a, b) ->
        let i = Interface.of_placements ~a ~b in
        Transform.equal (Interface.place ~a i) b);
    prop "invert is Iba" (QCheck.pair gen_transform gen_transform)
      (fun (a, b) ->
        Interface.equal
          (Interface.invert (Interface.of_placements ~a ~b))
          (Interface.of_placements ~a:b ~b:a));
    prop "invert is an involution" (QCheck.pair gen_vec gen_orient)
      (fun (v, o) ->
        let i = Interface.make v o in
        Interface.equal (Interface.invert (Interface.invert i)) i);
    (* The interface is invariant under a global isometry applied to
       the calling cell — the heart of "modulo an affine isometry"
       (section 3.4). *)
    prop "interface is isometry-invariant"
      (QCheck.triple gen_transform gen_transform gen_transform)
      (fun (g, a, b) ->
        let i = Interface.of_placements ~a ~b in
        let i' =
          Interface.of_placements ~a:(Transform.compose g a)
            ~b:(Transform.compose g b)
        in
        Interface.equal i i');
    (* Inheritance (eqs 2.11/2.12) must agree with brute force: place C
       anywhere, derive D so the inner interface holds, and read the
       interface between C and D off their placements. *)
    prop "inheritance agrees with brute force"
      (QCheck.triple
         (QCheck.pair gen_transform gen_transform)
         (QCheck.pair gen_transform gen_transform)
         gen_transform)
      (fun ((a_in_c, b_in_d), (a_abs_delta, _), tc) ->
        ignore a_abs_delta;
        let inner =
          Interface.of_placements ~a:a_in_c
            ~b:(Transform.compose a_in_c (Transform.make (Vec.make 3 1)))
        in
        let ta = Transform.compose tc a_in_c in
        let tb = Interface.place ~a:ta inner in
        let td = Transform.compose tb (Transform.invert b_in_d) in
        let expected = Interface.of_placements ~a:tc ~b:td in
        let got = Interface.inherit_interface ~inner ~a_in_c ~b_in_d in
        Interface.equal expected got) ]

let test_interface_worked_example () =
  (* Figure 2.2: A oriented south at (0,0), B oriented east at (4,2).
     Deskewing by south^-1 = south rotates the picture a half turn:
     B lands at (-4,-2) oriented east o south = west.  (Using our
     concrete D4 tables.) *)
  let a = Transform.{ orient = Orient.south; offset = Vec.zero } in
  let b = Transform.{ orient = Orient.east; offset = Vec.make 4 2 } in
  let i = Interface.of_placements ~a ~b in
  Alcotest.(check iface) "fig 2.2"
    (Interface.make (Vec.make (-4) (-2)) Orient.west)
    i

(* ------------------------------------------------------------------ *)
(* Interface table                                                    *)

let test_table_bilateral () =
  let tbl = Interface_table.create () in
  let i = Interface.make (Vec.make 10 0) Orient.east in
  Interface_table.declare tbl ~from:"a" ~into:"b" ~index:1 i;
  Alcotest.(check (option iface)) "forward" (Some i)
    (Interface_table.find tbl ~from:"a" ~into:"b" ~index:1);
  Alcotest.(check (option iface)) "reverse auto-loaded"
    (Some (Interface.invert i))
    (Interface_table.find tbl ~from:"b" ~into:"a" ~index:1);
  Alcotest.(check int) "two entries" 2 (Interface_table.length tbl)

let test_table_families () =
  let tbl = Interface_table.create () in
  let i1 = Interface.make (Vec.make 10 0) Orient.north in
  let i2 = Interface.make (Vec.make 0 20) Orient.south in
  Interface_table.declare tbl ~from:"a" ~into:"b" ~index:1 i1;
  Interface_table.declare tbl ~from:"a" ~into:"b" ~index:2 i2;
  Alcotest.(check (list int)) "family of interfaces (fig 2.3)" [ 1; 2 ]
    (Interface_table.indices tbl ~from:"a" ~into:"b");
  Alcotest.(check int) "next index" 3
    (Interface_table.next_index tbl ~from:"a" ~into:"b");
  (* Identical re-declaration is fine. *)
  Interface_table.declare tbl ~from:"a" ~into:"b" ~index:1 i1;
  (* Conflicting re-declaration is not. *)
  Alcotest.(check bool) "conflict raises" true
    (try
       Interface_table.declare tbl ~from:"a" ~into:"b" ~index:1 i2;
       false
     with Interface_table.Conflict { from = "a"; into = "b"; index = 1 } ->
       true)

let test_table_self_interface () =
  let tbl = Interface_table.create () in
  let i = Interface.make (Vec.make 10 0) Orient.north in
  Interface_table.declare tbl ~from:"a" ~into:"a" ~index:1 i;
  (* For A = A only the forward (reference) entry is stored. *)
  Alcotest.(check int) "single entry" 1 (Interface_table.length tbl);
  Alcotest.(check (option iface)) "canonical entry" (Some i)
    (Interface_table.find tbl ~from:"a" ~into:"a" ~index:1)

(* ------------------------------------------------------------------ *)
(* Graphs and expansion                                               *)

let leaf_cell name w h =
  let c = Cell.create name in
  Cell.add_box c Layer.Metal (Box.of_size ~origin:Vec.zero ~width:w ~height:h);
  c

(* A simple sample: cell "u" (8x8) with a horizontal pitch-10 interface
   (index 1) and a vertical pitch-12 interface (index 2). *)
let grid_table () =
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 0 12) Orient.north);
  tbl

let test_expand_row () =
  let u = leaf_cell "u" 8 8 in
  let tbl = grid_table () in
  let nodes = Array.init 5 (fun _ -> Graph.mk_instance u) in
  for i = 0 to 3 do
    Graph.connect nodes.(i) nodes.(i + 1) 1
  done;
  let row = Expand.mk_cell tbl "row" nodes.(0) in
  let placements =
    List.map
      (fun (i : Cell.instance) -> i.Cell.point_of_call)
      (Cell.instances row)
  in
  List.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d at x=%d" i (10 * i))
        true
        (Vec.equal p (Vec.make (10 * i) 0)))
    placements

let test_expand_against_edge_direction () =
  (* Connect b -> a but root at a: placement must use the inverse
     interface, so b sits at -10. *)
  let u = leaf_cell "u" 8 8 in
  let tbl = grid_table () in
  let a = Graph.mk_instance u and b = Graph.mk_instance u in
  Graph.connect b a 1;
  let cell = Expand.mk_cell tbl "pair" a in
  match Cell.instances cell with
  | [ ia; ib ] ->
    Alcotest.(check transform) "a at origin" Transform.identity
      (Cell.transform_of_instance ia);
    Alcotest.(check transform) "b at -10"
      (Transform.make (Vec.make (-10) 0))
      (Cell.transform_of_instance ib)
  | _ -> Alcotest.fail "expected two instances"

let test_directed_disambiguation () =
  (* Figures 3.5-3.7: with a "chiral" self-interface the two readings
     differ; directed edges pick exactly one. *)
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:1
    (Interface.make (Vec.make 10 3) Orient.east);
  match
    Expand.both_readings tbl ~placed:Transform.identity ~from:"u" ~into:"u"
      ~index:1
  with
  | None -> Alcotest.fail "interface missing"
  | Some (fwd, rev) ->
    Alcotest.(check bool) "two readings differ" false (Transform.equal fwd rev);
    Alcotest.(check transform) "forward reading"
      Transform.{ orient = Orient.east; offset = Vec.make 10 3 }
      fwd

let test_spanning_tree_and_cycles () =
  let u = leaf_cell "u" 8 8 in
  let tbl = grid_table () in
  (* 2x2 grid connected as a tree: 3 edges. *)
  let n = Array.init 4 (fun _ -> Graph.mk_instance u) in
  Graph.connect n.(0) n.(1) 1;
  Graph.connect n.(0) n.(2) 2;
  Graph.connect n.(2) n.(3) 1;
  Alcotest.(check bool) "is spanning tree" true (Graph.is_spanning_tree n.(0));
  (* Add the redundant but consistent fourth edge (fig 3.3): n1 -> n3
     vertically. *)
  Graph.connect n.(1) n.(3) 2;
  Alcotest.(check bool) "no longer a tree" false (Graph.is_spanning_tree n.(0));
  let cell = Expand.mk_cell tbl "grid" n.(0) in
  Alcotest.(check int) "4 instances" 4 (List.length (Cell.instances cell));
  (* Now an inconsistent cycle must be rejected. *)
  let m = Array.init 3 (fun _ -> Graph.mk_instance u) in
  Graph.connect m.(0) m.(1) 1;
  Graph.connect m.(1) m.(2) 1;
  Graph.connect m.(0) m.(2) 2;
  (* horizontal+horizontal vs vertical *)
  Alcotest.(check bool) "inconsistent cycle raises" true
    (try
       ignore (Expand.place_component tbl m.(0));
       false
     with Expand.Inconsistent_cycle _ -> true)

let test_missing_interface () =
  let u = leaf_cell "u" 8 8 in
  let v = leaf_cell "v" 8 8 in
  let tbl = grid_table () in
  let a = Graph.mk_instance u and b = Graph.mk_instance v in
  Graph.connect a b 7;
  Alcotest.(check bool) "missing interface raises" true
    (try
       ignore (Expand.mk_cell tbl "broken" a);
       false
     with Expand.Missing_interface { index = 7; _ } -> true)

let test_reuse_rejected () =
  let u = leaf_cell "u" 8 8 in
  let tbl = grid_table () in
  let a = Graph.mk_instance u and b = Graph.mk_instance u in
  Graph.connect a b 1;
  ignore (Expand.mk_cell tbl "once" a);
  Alcotest.(check bool) "second expansion rejected" true
    (try
       ignore (Expand.mk_cell tbl "twice" a);
       false
     with Expand.Already_placed _ -> true)

(* Transactional expansion: a failed expansion must leave every
   placement untouched, and the same graph must expand cleanly once the
   table is repaired — the regression for the old partial-placement
   corruption. *)
let test_transactional_rollback () =
  let u = leaf_cell "u" 8 8 in
  let v = leaf_cell "v" 8 8 in
  let tbl = grid_table () in
  let nodes = Array.init 4 (fun _ -> Graph.mk_instance u) in
  let stranger = Graph.mk_instance v in
  for i = 0 to 2 do
    Graph.connect nodes.(i) nodes.(i + 1) 1
  done;
  (* last edge has no interface: u -> v index 9 is undeclared *)
  Graph.connect nodes.(3) stranger 9;
  Alcotest.(check bool) "expansion fails" true
    (try
       ignore (Expand.place_component tbl nodes.(0));
       false
     with Expand.Missing_interface { index = 9; _ } -> true);
  (* nothing was committed — not even the nodes reached before the
     defect *)
  Array.iter
    (fun (n : Graph.node) ->
      Alcotest.(check bool) "placement still None" true
        (n.Graph.placement = None))
    nodes;
  Alcotest.(check bool) "stranger unplaced" true
    (stranger.Graph.placement = None);
  (* repair the table and the very same graph now expands *)
  Interface_table.declare tbl ~from:"u" ~into:"v" ~index:9
    (Interface.make (Vec.make 10 0) Orient.north);
  let cell = Expand.mk_cell tbl "repaired" nodes.(0) in
  Alcotest.(check int) "5 instances" 5 (List.length (Cell.instances cell))

(* Collect mode: one run reports every defect at once — a missing
   interface AND an inconsistent cycle — with the graph untouched; after
   repairing both, the same graph expands. *)
let test_collect_mode_report () =
  let u = leaf_cell "u" 8 8 in
  let v = leaf_cell "v" 8 8 in
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  (* deliberately wrong: should be (20, 0) to close the a-b-c cycle *)
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 0 12) Orient.north);
  let a = Graph.mk_instance u
  and b = Graph.mk_instance u
  and c = Graph.mk_instance u
  and d = Graph.mk_instance v in
  Graph.connect a b 1;
  Graph.connect b c 1;
  Graph.connect a c 2;
  (* inconsistent cycle *)
  Graph.connect c d 7;
  (* missing interface *)
  let r = Expand.run ~mode:`Collect tbl a in
  Alcotest.(check int) "two defects" 2 (List.length r.Expand.r_defects);
  Alcotest.(check int) "component of 4" 4 r.Expand.r_component;
  let missing, mismatches =
    List.partition
      (function Expand.Missing _ -> true | Expand.Mismatch _ -> false)
      r.Expand.r_defects
  in
  (match missing with
  | [ Expand.Missing { from = "u"; into = "v"; index = 7; path } ] ->
    Alcotest.(check bool) "path starts at root" true
      (match path with "u" :: _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected exactly one missing-interface defect");
  (match mismatches with
  | [ Expand.Mismatch { cell = "u"; index; expected; actual; _ } ] ->
    (* the defect is pinned to whichever edge closed the cycle *)
    Alcotest.(check bool) "closing edge index" true (index = 1 || index = 2);
    Alcotest.(check bool) "transforms differ" false
      (Transform.equal expected actual)
  | _ -> Alcotest.fail "expected exactly one mismatch defect");
  (* diagnosis is read-only *)
  List.iter
    (fun (n : Graph.node) ->
      Alcotest.(check bool) "untouched" true (n.Graph.placement = None))
    [ a; b; c; d ];
  (* commit refuses a defective report *)
  Alcotest.(check bool) "commit refuses defects" true
    (try
       ignore (Expand.commit r);
       false
     with Invalid_argument _ -> true);
  (* repair both defects: overwrite the bad self-interface, declare the
     missing one *)
  Interface_table.replace tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 20 0) Orient.north);
  Interface_table.declare tbl ~from:"u" ~into:"v" ~index:7
    (Interface.make (Vec.make 10 0) Orient.north);
  let r2 = Expand.run ~mode:`Collect tbl a in
  Alcotest.(check int) "no defects after repair" 0
    (List.length r2.Expand.r_defects);
  let cell = Expand.mk_cell tbl "repaired" a in
  Alcotest.(check int) "4 instances" 4 (List.length (Cell.instances cell))

(* ------------------------------------------------------------------ *)
(* Graph plumbing: generators, self-loops, component size              *)

let test_generator_isolation () =
  let u = leaf_cell "u" 8 8 in
  let g1 = Graph.generator () and g2 = Graph.generator ~first:100 () in
  let a = Graph.mk_instance ~gen:g1 u
  and b = Graph.mk_instance ~gen:g1 u
  and c = Graph.mk_instance ~gen:g2 u in
  Alcotest.(check int) "g1 ids consecutive" (a.Graph.id + 1) b.Graph.id;
  Alcotest.(check int) "g2 starts where asked" 100 c.Graph.id;
  (* default generator keeps its own sequence *)
  let d = Graph.mk_instance u and e = Graph.mk_instance u in
  Alcotest.(check int) "default ids consecutive" (d.Graph.id + 1) e.Graph.id

let test_self_loop_rejected () =
  let u = leaf_cell "u" 8 8 in
  let a = Graph.mk_instance u in
  Alcotest.(check bool) "self-loop rejected" true
    (try
       Graph.connect a a 1;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "no edge added" 0 (List.length (Graph.edges a))

let test_component_size () =
  let u = leaf_cell "u" 8 8 in
  let n = Array.init 4 (fun _ -> Graph.mk_instance u) in
  Graph.connect n.(0) n.(1) 1;
  Graph.connect n.(0) n.(2) 2;
  Graph.connect n.(2) n.(3) 1;
  let nodes, edges = Graph.component_size n.(0) in
  Alcotest.(check int) "nodes agree with reachable"
    (List.length (Graph.reachable n.(0))) nodes;
  Alcotest.(check int) "edges agree with edge_count"
    (Graph.edge_count n.(0)) edges;
  Alcotest.(check (pair int int)) "tree: 4 nodes, 3 edges" (4, 3)
    (nodes, edges);
  Alcotest.(check bool) "tree detected" true (Graph.is_spanning_tree n.(0));
  Graph.connect n.(1) n.(3) 2;
  Alcotest.(check (pair int int)) "cycle: 4 nodes, 4 edges" (4, 4)
    (Graph.component_size n.(0));
  Alcotest.(check bool) "cycle detected" false (Graph.is_spanning_tree n.(0))

(* Root independence: layouts from different roots are equal modulo a
   single global isometry (section 3.4). *)
let test_root_equivalence () =
  let build () =
    let u = leaf_cell "u" 8 8 in
    let nodes = Array.init 6 (fun _ -> Graph.mk_instance u) in
    Graph.connect nodes.(0) nodes.(1) 1;
    Graph.connect nodes.(1) nodes.(2) 1;
    Graph.connect nodes.(0) nodes.(3) 2;
    Graph.connect nodes.(3) nodes.(4) 1;
    Graph.connect nodes.(4) nodes.(5) 2;
    nodes
  in
  let tbl = grid_table () in
  let n1 = build () and n2 = build () in
  ignore (Expand.place_component tbl n1.(0));
  ignore (Expand.place_component tbl n2.(4));
  let t1 i = Option.get n1.(i).Graph.placement in
  let t2 i = Option.get n2.(i).Graph.placement in
  (* g maps layout 1 onto layout 2 using node 0 as anchor. *)
  let g = Transform.compose (t2 0) (Transform.invert (t1 0)) in
  for i = 0 to 5 do
    Alcotest.(check transform)
      (Printf.sprintf "node %d related by g" i)
      (t2 i)
      (Transform.compose g (t1 i))
  done

(* ------------------------------------------------------------------ *)
(* Sample extraction                                                  *)

let test_sample_extraction () =
  let a = leaf_cell "alpha" 10 10 in
  let b = leaf_cell "beta" 6 6 in
  let assembly = Cell.create "assembly" in
  let ia = Cell.add_instance assembly ~at:Vec.zero a in
  let ib =
    Cell.add_instance assembly ~orient:Orient.east ~at:(Vec.make 9 4) b
  in
  (* beta east at (9,4): bbox corners (0,0),(6,6) -> (0,0),(6,-6),
     translated: [9,-2 .. 15,4]; overlap with alpha's [0,0..10,10] is
     [9,0..10,4]. *)
  Cell.add_label assembly "1" (Vec.make 9 1);
  let s, decls = Sample.of_assemblies [ assembly ] in
  (match decls with
  | [ d ] ->
    Alcotest.(check string) "from" "alpha" d.Sample.d_from;
    Alcotest.(check string) "into" "beta" d.Sample.d_into;
    Alcotest.(check int) "index" 1 d.Sample.d_index;
    Alcotest.(check bool) "not duplicate" false d.Sample.d_duplicate
  | _ -> Alcotest.fail "expected one declaration");
  Alcotest.(check (option iface)) "extracted interface"
    (Some (Interface.of_instances ia ib))
    (Interface_table.find s.Sample.table ~from:"alpha" ~into:"beta" ~index:1);
  (* Both leaf definitions were registered. *)
  Alcotest.(check bool) "alpha loaded" true (Db.mem s.Sample.db "alpha");
  Alcotest.(check bool) "beta loaded" true (Db.mem s.Sample.db "beta")

let test_sample_duplicate_detection () =
  (* HPLA's sample contained two identical and-sq/connect-ao interfaces
     (section 1.2.2); our extractor flags the redundancy. *)
  let a = leaf_cell "alpha" 10 10 in
  let assembly = Cell.create "assembly" in
  ignore (Cell.add_instance assembly ~at:Vec.zero a);
  ignore (Cell.add_instance assembly ~at:(Vec.make 8 0) a);
  ignore (Cell.add_instance assembly ~at:(Vec.make 16 0) a);
  Cell.add_label assembly "1" (Vec.make 8 5);
  Cell.add_label assembly "1" (Vec.make 16 5);
  let _, decls = Sample.of_assemblies [ assembly ] in
  Alcotest.(check (list bool)) "second is duplicate" [ false; true ]
    (List.map (fun d -> d.Sample.d_duplicate) decls)

let test_sample_bad_label () =
  let a = leaf_cell "alpha" 10 10 in
  let assembly = Cell.create "assembly" in
  ignore (Cell.add_instance assembly ~at:Vec.zero a);
  Cell.add_label assembly "1" (Vec.make 5 5);
  Alcotest.(check bool) "label over one instance raises" true
    (try
       ignore (Sample.of_assemblies [ assembly ]);
       false
     with Sample.Bad_label _ -> true)

let test_declare_by_example () =
  let s = Sample.create () in
  let a = leaf_cell "alpha" 10 10 in
  let ia = Cell.instance ~at:Vec.zero a in
  let ib = Cell.instance ~orient:Orient.south ~at:(Vec.make 20 0) a in
  let idx = Sample.declare_by_example s ia ib in
  Alcotest.(check int) "auto index" 1 idx;
  let idx2 = Sample.declare_by_example s ia ib in
  (* identical interface redeclared under a fresh index is allowed *)
  Alcotest.(check int) "next auto index" 2 idx2

(* ------------------------------------------------------------------ *)
(* End-to-end: sample -> graph -> layout matches the sample geometry. *)

let test_by_example_end_to_end () =
  let a = leaf_cell "alpha" 10 10 in
  let assembly = Cell.create "assembly" in
  ignore (Cell.add_instance assembly ~at:Vec.zero a);
  ignore (Cell.add_instance assembly ~orient:Orient.mirror_y ~at:(Vec.make 20 0) a);
  (* mirror_y at (20,0) puts the second alpha on [10,0..20,10]; the
     overlap with the first is the x = 10 edge. *)
  Cell.add_label assembly "1" (Vec.make 10 5);
  let s, _ = Sample.of_assemblies [ assembly ] in
  let n1 = Graph.mk_instance a and n2 = Graph.mk_instance a in
  Graph.connect n1 n2 1;
  let out = Expand.mk_cell s.Sample.table "out" n1 in
  (* The generated pair must reproduce the sample's relative placement:
     flattened geometry equal to the assembly's (same anchor). *)
  Alcotest.(check bool) "pair reproduces sample" true
    (Cif.roundtrip_equal out
       (let ref_cell = Cell.create "ref" in
        ignore (Cell.add_instance ref_cell ~at:Vec.zero a);
        ignore
          (Cell.add_instance ref_cell ~orient:Orient.mirror_y
             ~at:(Vec.make 20 0) a);
        ref_cell))

let test_root_placement () =
  (* expanding with a non-default root placement shifts and reorients
     the whole component *)
  let u = leaf_cell "u" 8 8 in
  let tbl = grid_table () in
  let a = Graph.mk_instance u and b = Graph.mk_instance u in
  Graph.connect a b 1;
  let g = Transform.{ orient = Orient.east; offset = Vec.make 100 50 } in
  ignore (Expand.place_component ~root_placement:g tbl a);
  Alcotest.(check transform) "root where asked" g (Option.get a.Graph.placement);
  Alcotest.(check transform) "neighbour follows"
    (Interface.place ~a:g (Interface.make (Vec.make 10 0) Orient.north))
    (Option.get b.Graph.placement)

let test_table_fold_and_gaps () =
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"a" ~into:"b" ~index:1
    (Interface.make (Vec.make 1 0) Orient.north);
  Interface_table.declare tbl ~from:"a" ~into:"b" ~index:3
    (Interface.make (Vec.make 0 1) Orient.south);
  (* fold visits the bilateral images too *)
  let n = Interface_table.fold (fun ~from:_ ~into:_ ~index:_ _ acc -> acc + 1) tbl 0 in
  Alcotest.(check int) "four entries" 4 n;
  (* next_index fills the gap *)
  Alcotest.(check int) "gap filled" 2
    (Interface_table.next_index tbl ~from:"a" ~into:"b")

(* Mirrored-row tiling: real arrays often flip alternate rows about
   the x axis so power rails are shared.  The interface machinery must
   compose reflections correctly over many rows. *)
let test_mirrored_row_tiling () =
  let u = Cell.create "u" in
  Cell.add_box u Layer.Metal (Box.of_size ~origin:Vec.zero ~width:8 ~height:2);
  Cell.add_box u Layer.Poly (Box.of_size ~origin:(Vec.make 2 2) ~width:2 ~height:6);
  let tbl = Interface_table.create () in
  (* horizontal neighbours share orientation *)
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:1
    (Interface.make (Vec.make 8 0) Orient.north);
  (* the row above is flipped about x, its origin 16 up (two cell
     heights, so the flipped cell's extent lands in [8, 16]) *)
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 0 16) Orient.mirror_x);
  let rows = 4 and cols = 4 in
  let nodes = Array.init rows (fun _ -> Array.init cols (fun _ -> Graph.mk_instance u)) in
  for r = 0 to rows - 1 do
    for c = 1 to cols - 1 do
      Graph.connect nodes.(r).(c - 1) nodes.(r).(c) 1
    done
  done;
  for r = 1 to rows - 1 do
    Graph.connect nodes.(r - 1).(0) nodes.(r).(0) 2
  done;
  let layout = Expand.mk_cell tbl "mirrored" nodes.(0).(0) in
  (* orientations alternate N, MX, N, MX...  Note mirror_x o mirror_x
     = identity, so even rows are upright. *)
  Array.iteri
    (fun r row ->
      Array.iter
        (fun (n : Graph.node) ->
          let t = Option.get n.Graph.placement in
          let expected =
            if r mod 2 = 0 then Orient.north else Orient.mirror_x
          in
          Alcotest.(check bool)
            (Printf.sprintf "row %d orientation" r)
            true
            (Orient.equal t.Transform.orient expected))
        row)
    nodes;
  (* flipped rows really are reflections: row 1's flattened geometry is
     row 0's reflected about y = 8 *)
  let f = Flatten.flatten layout in
  let boxes_in lo hi =
    List.filter (fun ((_ : Layer.t), (b : Box.t)) -> b.Box.ymin >= lo && b.Box.ymax <= hi)
      (Array.to_list f.Flatten.flat_boxes)
    |> List.map (fun (l, b) -> (Layer.to_index l, b))
    |> List.sort compare
  in
  let row0 = boxes_in 0 8 in
  let row1_reflected =
    boxes_in 8 16
    |> List.map (fun (l, (b : Box.t)) ->
           (l, Box.make ~xmin:b.Box.xmin ~xmax:b.Box.xmax ~ymin:(16 - b.Box.ymax)
              ~ymax:(16 - b.Box.ymin)))
    |> List.sort compare
  in
  Alcotest.(check bool) "row 1 mirrors row 0" true (row0 = row1_reflected);
  (* and the pattern keeps its pitch over all rows *)
  Alcotest.(check int) "16 instances" 16
    (List.length (Cell.instances layout))

let () =
  Alcotest.run "rsg_core"
    [ ("interface",
       Alcotest.test_case "fig 2.2 worked example" `Quick
         test_interface_worked_example
       :: suite_interface);
      ("interface-table",
       [ Alcotest.test_case "bilateral" `Quick test_table_bilateral;
         Alcotest.test_case "families + conflicts" `Quick test_table_families;
         Alcotest.test_case "self interface" `Quick test_table_self_interface ]);
      ("graph-expand",
       [ Alcotest.test_case "row expansion" `Quick test_expand_row;
         Alcotest.test_case "against edge direction" `Quick
           test_expand_against_edge_direction;
         Alcotest.test_case "directed disambiguation" `Quick
           test_directed_disambiguation;
         Alcotest.test_case "spanning tree + cycles" `Quick
           test_spanning_tree_and_cycles;
         Alcotest.test_case "missing interface" `Quick test_missing_interface;
         Alcotest.test_case "reuse rejected" `Quick test_reuse_rejected;
         Alcotest.test_case "root equivalence" `Quick test_root_equivalence;
         Alcotest.test_case "mirrored row tiling" `Quick
           test_mirrored_row_tiling;
         Alcotest.test_case "root placement" `Quick test_root_placement ]);
      ("transactional-expand",
       [ Alcotest.test_case "rollback on failure" `Quick
           test_transactional_rollback;
         Alcotest.test_case "collect-mode report + repair" `Quick
           test_collect_mode_report ]);
      ("graph-plumbing",
       [ Alcotest.test_case "generator isolation" `Quick
           test_generator_isolation;
         Alcotest.test_case "self-loop rejected" `Quick
           test_self_loop_rejected;
         Alcotest.test_case "component size" `Quick test_component_size ]);
      ("table-extra",
       [ Alcotest.test_case "fold and index gaps" `Quick
           test_table_fold_and_gaps ]);
      ("sample",
       [ Alcotest.test_case "extraction" `Quick test_sample_extraction;
         Alcotest.test_case "duplicate detection" `Quick
           test_sample_duplicate_detection;
         Alcotest.test_case "bad label" `Quick test_sample_bad_label;
         Alcotest.test_case "declare by example" `Quick test_declare_by_example;
         Alcotest.test_case "end to end" `Quick test_by_example_end_to_end ]) ]

(* Tests for the compaction subsystem (Chapter 6): constraint graphs,
   Bellman-Ford, the two constraint generators, slack distribution,
   leaf-cell compaction with pitch variables, the simplex solver and
   contact expansion. *)

open Rsg_geom
open Rsg_compact

let box x0 y0 x1 y1 = Box.make ~xmin:x0 ~ymin:y0 ~xmax:x1 ~ymax:y1

let item layer b = { Scanline.layer; box = b }

(* ------------------------------------------------------------------ *)
(* Cgraph + Bellman                                                   *)

let test_bellman_chain () =
  let g = Cgraph.create () in
  let v = Array.init 4 (fun i -> Cgraph.fresh_var g ~init:(10 * i) ()) in
  Array.iter (fun vi -> Cgraph.add_ge g ~from:Cgraph.origin ~to_:vi ~gap:0) v;
  for i = 0 to 2 do
    Cgraph.add_ge g ~from:v.(i) ~to_:v.(i + 1) ~gap:5
  done;
  let r = Bellman.solve g in
  Alcotest.(check (list int)) "leftmost chain" [ 0; 5; 10; 15 ]
    (Array.to_list (Array.map (fun vi -> r.Bellman.values.(vi)) v));
  Alcotest.(check bool) "satisfied" true (Cgraph.satisfied g r.Bellman.values)

let test_bellman_infeasible () =
  let g = Cgraph.create () in
  let a = Cgraph.fresh_var g ~init:0 () and b = Cgraph.fresh_var g ~init:1 () in
  Cgraph.add_ge g ~from:Cgraph.origin ~to_:a ~gap:0;
  Cgraph.add_ge g ~from:a ~to_:b ~gap:5;
  Cgraph.add_ge g ~from:b ~to_:a ~gap:(-2);
  (* a >= b - 2 and b >= a + 5: positive cycle *)
  Alcotest.(check bool) "infeasible" true
    (try ignore (Bellman.solve g); false with Bellman.Infeasible _ -> true)

let test_infeasible_witness () =
  (* the exception names the offending constraint chain so a CLI (or a
     server worker) can print it without access to the solver's graph *)
  let g = Cgraph.create () in
  let a = Cgraph.fresh_var g ~name:"a" ~init:0 () in
  let b = Cgraph.fresh_var g ~name:"b" ~init:1 () in
  Cgraph.add_ge g ~from:Cgraph.origin ~to_:a ~gap:0;
  Cgraph.add_ge g ~from:a ~to_:b ~gap:5;
  Cgraph.add_ge g ~from:b ~to_:a ~gap:(-2);
  let check_witness what w =
    Alcotest.(check bool) (what ^ ": non-empty") true (w <> []);
    Alcotest.(check bool)
      (what ^ ": positive gain") true
      (Bellman.cycle_gain w > 0);
    let names =
      List.concat_map (fun e -> [ e.Bellman.w_from; e.Bellman.w_to ]) w
    in
    Alcotest.(check bool) (what ^ ": names a") true (List.mem "a" names);
    Alcotest.(check bool) (what ^ ": names b") true (List.mem "b" names);
    let rendered = Format.asprintf "%a" Bellman.pp_witness w in
    Alcotest.(check bool)
      (what ^ ": rendering mentions the cycle") true
      (let has needle =
         let rec scan i =
           i + String.length needle <= String.length rendered
           && (String.sub rendered i (String.length needle) = needle
              || scan (i + 1))
         in
         scan 0
       in
       has "positive constraint cycle" && has "a -> b" && has "b -> a")
  in
  (match Bellman.solve g with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Bellman.Infeasible w -> check_witness "worklist" w);
  match Bellman.solve_fixed g with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Bellman.Infeasible w -> check_witness "fixed" w

let test_bellman_unbounded () =
  let g = Cgraph.create () in
  let _a = Cgraph.fresh_var g ~init:0 () in
  Alcotest.(check bool) "unbounded" true
    (try ignore (Bellman.solve g); false with Bellman.Unbounded _ -> true)

let test_bellman_negative_weights () =
  (* rigid widths need negative back edges *)
  let g = Cgraph.create () in
  let l = Cgraph.fresh_var g ~init:0 () and r = Cgraph.fresh_var g ~init:7 () in
  Cgraph.add_ge g ~from:Cgraph.origin ~to_:l ~gap:2;
  Cgraph.add_eq g ~from:l ~to_:r ~gap:7;
  let sol = Bellman.solve g in
  Alcotest.(check int) "left" 2 sol.Bellman.values.(l);
  Alcotest.(check int) "right" 9 sol.Bellman.values.(r)

(* the worklist solver must agree with the fixed-pass reference on
   random feasible systems, for every edge ordering, while never
   examining more edges *)
let prop_worklist_matches_fixed =
  let gen_graph =
    QCheck.make
      QCheck.Gen.(
        fun st ->
          let n = int_range 2 20 st in
          let g = Cgraph.create () in
          let v =
            Array.init n (fun _ -> Cgraph.fresh_var g ~init:(int_range 0 100 st) ())
          in
          Array.iter
            (fun vi -> Cgraph.add_ge g ~from:Cgraph.origin ~to_:vi ~gap:0)
            v;
          let m = int_range 0 (3 * n) st in
          for _ = 1 to m do
            (* forward edges only: always feasible *)
            let i = int_range 0 (n - 2) st in
            let j = int_range (i + 1) (n - 1) st in
            Cgraph.add_ge g ~from:v.(i) ~to_:v.(j) ~gap:(int_range (-4) 12 st)
          done;
          g)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"worklist matches fixed-pass solver"
       gen_graph (fun g ->
         List.for_all
           (fun order ->
             let w = Bellman.solve ~order g in
             let f = Bellman.solve_fixed ~order g in
             w.Bellman.values = f.Bellman.values
             && w.Bellman.scans <= f.Bellman.scans)
           [ Bellman.Sorted_by_abscissa; Bellman.Insertion;
             Bellman.Reverse_sorted ]))

let test_sorted_edge_speedup () =
  (* Section 6.4.2: with edges sorted by initial abscissa, a long
     already-ordered chain relaxes in one effective pass. *)
  let build () =
    let g = Cgraph.create () in
    let n = 60 in
    let v = Array.init n (fun i -> Cgraph.fresh_var g ~init:(10 * i) ()) in
    Array.iter (fun vi -> Cgraph.add_ge g ~from:Cgraph.origin ~to_:vi ~gap:0) v;
    for i = 0 to n - 2 do
      Cgraph.add_ge g ~from:v.(i) ~to_:v.(i + 1) ~gap:4
    done;
    g
  in
  let sorted = Bellman.solve ~order:Bellman.Sorted_by_abscissa (build ()) in
  let reversed = Bellman.solve ~order:Bellman.Reverse_sorted (build ()) in
  Alcotest.(check bool) "sorted is few passes" true (sorted.Bellman.passes <= 3);
  Alcotest.(check bool) "reversed needs many" true
    (reversed.Bellman.passes > 10);
  Alcotest.(check (array int)) "same solution" sorted.Bellman.values
    reversed.Bellman.values

(* ------------------------------------------------------------------ *)
(* Constraint generation                                              *)

let test_fragmented_bus () =
  (* Figure 6.5: an abutting 5-fragment diffusion bus.  The naive
     generator forces each fragment a full spacing from every other;
     the visibility generator lets the bus shrink to one fragment's
     width. *)
  let fragments =
    Array.init 5 (fun i -> item Layer.Diffusion (box (4 * i) 0 (4 * (i + 1)) 3))
  in
  let naive =
    Compactor.compact ~method_:Scanline.Naive Rules.default fragments
  in
  let vis =
    Compactor.compact ~method_:Scanline.Visibility Rules.default fragments
  in
  Alcotest.(check int) "width before" 20 naive.Compactor.width_before;
  (* naive: 5 fragments, each 4 wide, 3 apart: 5*4 + 4*3 *)
  Alcotest.(check int) "naive overconstrained" 32 naive.Compactor.width_after;
  Alcotest.(check int) "visibility collapses to min width" 4
    vis.Compactor.width_after

let test_spacing_compaction () =
  (* two separate metal wires drift together to minimum spacing *)
  let items =
    [| item Layer.Metal (box 0 0 3 10); item Layer.Metal (box 20 0 23 10) |]
  in
  let r = Compactor.compact Rules.default items in
  Alcotest.(check int) "compacted to min spacing" 9 r.Compactor.width_after;
  Alcotest.(check (list (of_pp Fmt.nop))) "no violations" []
    (Scanline.check Rules.default r.Compactor.items)

let test_device_frozen () =
  (* poly crossing diffusion is a transistor: relative geometry must
     survive compaction *)
  let items =
    [| item Layer.Diffusion (box 5 0 9 12); item Layer.Poly (box 2 4 12 6) |]
  in
  let r = Compactor.compact Rules.default items in
  let d = r.Compactor.items.(0).Scanline.box
  and p = r.Compactor.items.(1).Scanline.box in
  Alcotest.(check int) "gate offset preserved" 3 (d.Box.xmin - p.Box.xmin);
  Alcotest.(check int) "gate width preserved" 10 (Box.width p)

let test_contact_enclosure () =
  (* a contact cut inside metal keeps its enclosure margin *)
  let items =
    [| item Layer.Metal (box 0 0 8 8); item Layer.Contact_cut (box 3 3 5 5) |]
  in
  let r = Compactor.compact Rules.default items in
  let m = r.Compactor.items.(0).Scanline.box
  and c = r.Compactor.items.(1).Scanline.box in
  Alcotest.(check bool) "cut enclosed" true
    (c.Box.xmin - m.Box.xmin >= 1 && m.Box.xmax - c.Box.xmax >= 1)

let test_checker_finds_violations () =
  let bad =
    [| item Layer.Metal (box 0 0 3 10); item Layer.Metal (box 4 0 7 10) |]
  in
  Alcotest.(check int) "one violation" 1
    (List.length (Scanline.check Rules.default bad));
  let good =
    [| item Layer.Metal (box 0 0 3 10); item Layer.Metal (box 6 0 9 10) |]
  in
  Alcotest.(check int) "no violation" 0
    (List.length (Scanline.check Rules.default good))

let test_compaction_is_legal () =
  (* a small jumble of wires compacts to a violation-free layout *)
  let items =
    [| item Layer.Metal (box 0 0 3 20);
       item Layer.Metal (box 10 0 13 20);
       item Layer.Metal (box 20 5 23 15);
       item Layer.Poly (box 30 0 32 20);
       item Layer.Diffusion (box 40 2 44 18) |]
  in
  let r = Compactor.compact Rules.default items in
  Alcotest.(check bool) "narrower" true
    (r.Compactor.width_after < r.Compactor.width_before);
  Alcotest.(check (list (of_pp Fmt.nop))) "legal" []
    (Scanline.check Rules.default r.Compactor.items)

let test_stretchable_bus () =
  (* bus sizing: a stretchable box shrinks to the rule width *)
  let items = [| item Layer.Metal (box 0 0 12 10) |] in
  let r =
    Compactor.compact ~stretchable:(fun _ -> true) Rules.default items
  in
  Alcotest.(check int) "shrunk to min width" 3 r.Compactor.width_after

(* ------------------------------------------------------------------ *)
(* Slack distribution (fig 6.8)                                       *)

let jog_items () =
  [| item Layer.Metal (box 0 0 4 2);     (* obstacle *)
     item Layer.Metal (box 10 0 13 2);   (* wire segment A *)
     item Layer.Metal (box 10 2 13 4);   (* wire segment B *)
     item Layer.Metal (box 10 4 13 6) |] (* wire segment C *)

let test_leftmost_worsens_jog () =
  let r = Compactor.compact Rules.default (jog_items ()) in
  Alcotest.(check int) "input has no jogs" 0
    (Compactor.jog_metric (jog_items ()));
  Alcotest.(check bool) "leftmost packing creates jogs" true
    (Compactor.jog_metric r.Compactor.items > 0)

let test_slack_distribution_repairs_jog () =
  let packed = Compactor.compact Rules.default (jog_items ()) in
  let eased =
    Compactor.compact ~distribute_slack:true Rules.default (jog_items ())
  in
  Alcotest.(check bool) "same width" true
    (eased.Compactor.width_after = packed.Compactor.width_after);
  Alcotest.(check bool) "fewer jogs" true
    (Compactor.jog_metric eased.Compactor.items
    < Compactor.jog_metric packed.Compactor.items);
  Alcotest.(check (list (of_pp Fmt.nop))) "still legal" []
    (Scanline.check Rules.default eased.Compactor.items)

let test_jog_golden () =
  (* golden numbers for the Figure 6.8 example: leftmost packing
     reaches width 10 at 2 jogs; slack distribution keeps the width
     and repairs one of them *)
  let packed = Compactor.compact Rules.default (jog_items ()) in
  let eased =
    Compactor.compact ~distribute_slack:true Rules.default (jog_items ())
  in
  Alcotest.(check int) "leftmost width" 10 packed.Compactor.width_after;
  Alcotest.(check int) "leftmost jogs" 2
    (Compactor.jog_metric packed.Compactor.items);
  Alcotest.(check int) "eased width" 10 eased.Compactor.width_after;
  Alcotest.(check int) "eased jogs" 1
    (Compactor.jog_metric eased.Compactor.items)

(* slack distribution is a repair pass inside the achieved width: on
   any layout it may never widen the result and must keep it legal.
   (A universal "never worsens the jog metric" is NOT a theorem:
   centring a box that happens to be vertically adjacent to an aligned
   run introduces a counted misalignment — the jog repair claim is the
   deterministic Figure 6.8 tests' job.) *)
let prop_slack_never_worse =
  let gen_items =
    QCheck.make
      QCheck.Gen.(
        let gen_item =
          let* l = oneofl [ Layer.Metal; Layer.Poly; Layer.Diffusion ] in
          let* x = int_range 0 60 and* y = int_range 0 40 in
          let* w = int_range 2 10 and* h = int_range 2 10 in
          return (item l (box x y (x + w) (y + h)))
        in
        let* n = int_range 2 12 in
        let* l = list_size (return n) gen_item in
        return (Array.of_list l))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"slack distribution never widens and stays legal" gen_items
       (fun items ->
         match
           ( Compactor.compact Rules.default items,
             Compactor.compact ~distribute_slack:true Rules.default items )
         with
         | packed, eased ->
           eased.Compactor.width_after <= packed.Compactor.width_after
           && ((not (Scanline.check Rules.default items = []))
              || Scanline.check Rules.default eased.Compactor.items = [])
         | exception Bellman.Infeasible _ -> true))

let test_rightmost_bounds () =
  let items = jog_items () in
  let gen = Scanline.generate Rules.default Scanline.Visibility items in
  let lo = (Bellman.solve gen.Scanline.graph).Bellman.values in
  let w = Array.fold_left max 0 lo in
  let hi = Compactor.rightmost gen.Scanline.graph ~width:w in
  Alcotest.(check bool) "hi >= lo everywhere" true
    (Array.for_all2 (fun a b -> b >= a) lo hi);
  Alcotest.(check bool) "hi satisfies constraints" true
    (Cgraph.satisfied gen.Scanline.graph hi)

(* ------------------------------------------------------------------ *)
(* Simplex                                                            *)

let test_simplex_basic () =
  (* min x + y  s.t. x >= 2, y >= 3, x + y >= 7 *)
  let p =
    { Simplex.n_vars = 2;
      objective = [| 1.0; 1.0 |];
      constraints =
        [ ([| 1.0; 0.0 |], 2.0); ([| 0.0; 1.0 |], 3.0); ([| 1.0; 1.0 |], 7.0) ] }
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "objective" 7.0 objective
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_free_vars () =
  (* min x  s.t. x >= -5 : free variables go negative *)
  let p =
    { Simplex.n_vars = 1;
      objective = [| 1.0 |];
      constraints = [ ([| 1.0 |], -5.0) ] }
  in
  match Simplex.solve p with
  | Simplex.Optimal { z; _ } ->
    Alcotest.(check (float 1e-6)) "x = -5" (-5.0) z.(0)
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_infeasible () =
  let p =
    { Simplex.n_vars = 1;
      objective = [| 1.0 |];
      constraints = [ ([| 1.0 |], 4.0); ([| -1.0 |], -2.0) ] }
  in
  (* x >= 4 and x <= 2 *)
  Alcotest.(check bool) "infeasible" true
    (match Simplex.solve p with Simplex.Infeasible -> true | _ -> false)

let test_simplex_unbounded () =
  let p =
    { Simplex.n_vars = 1;
      objective = [| -1.0 |];
      constraints = [ ([| 1.0 |], 0.0) ] }
  in
  (* max x, x >= 0 *)
  Alcotest.(check bool) "unbounded" true
    (match Simplex.solve p with Simplex.Unbounded -> true | _ -> false)

let test_simplex_difference_constraints () =
  (* the shape leaf compaction emits: min l s.t. b - a >= 3,
     l - (b - a) >= 2, a = 0  => l = 5 *)
  let p =
    { Simplex.n_vars = 3;
      objective = [| 0.0; 0.0; 1.0 |];
      constraints =
        [ ([| -1.0; 1.0; 0.0 |], 3.0);
          ([| 1.0; -1.0; 1.0 |], 2.0);
          ([| 1.0; 0.0; 0.0 |], 0.0);
          ([| -1.0; 0.0; 0.0 |], 0.0) ] }
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-6)) "lambda = 5" 5.0 objective
  | _ -> Alcotest.fail "expected optimum"

(* ------------------------------------------------------------------ *)
(* Leaf-cell compaction                                               *)

let two_bar_cell () =
  let c = Rsg_layout.Cell.create "leafcell" in
  Rsg_layout.Cell.add_box c Layer.Metal (box 0 4 10 6);
  Rsg_layout.Cell.add_box c Layer.Metal (box 4 0 14 2);
  c

let test_leaf_pitch_shrinks () =
  let spec = { Leaf.p_index = 1; p_dx = 20; p_dy = 0; p_weight = 100 } in
  let r = Leaf.compact Rules.default (two_bar_cell ()) ~pitches:[ spec ] in
  Alcotest.(check int) "pitch before" 20 (List.assoc 1 r.Leaf.pitch_before);
  Alcotest.(check int) "pitch compacted" 13 (List.assoc 1 r.Leaf.pitches);
  Alcotest.(check bool) "strip is legal" true
    (Leaf.verify Rules.default r ~pitches:[ spec ]);
  (* the simplex agrees with the iterative pitch *)
  match r.Leaf.lp_pitches with
  | Some [ (1, lp) ] -> Alcotest.(check (float 0.01)) "lp pitch" 13.0 lp
  | _ -> Alcotest.fail "expected LP pitch"

let test_leaf_identical_instances () =
  (* all instances share one geometry by construction: tiling the
     compacted cell at the compacted pitch has no violations over a
     long strip *)
  let spec = { Leaf.p_index = 1; p_dx = 30; p_dy = 0; p_weight = 10 } in
  let cell = two_bar_cell () in
  let r = Leaf.compact Rules.default cell ~pitches:[ spec ] in
  let items = Scanline.items_of_cell r.Leaf.cell in
  let pitch = List.assoc 1 r.Leaf.pitches in
  let strip =
    Array.concat
      (List.init 6 (fun k ->
           Array.map
             (fun (it : Scanline.item) ->
               { it with
                 Scanline.box =
                   Box.translate (Vec.make (k * pitch) 0) it.Scanline.box })
             items))
  in
  Alcotest.(check (list (of_pp Fmt.nop))) "6-instance strip legal" []
    (Scanline.check Rules.default strip)

let test_leaf_vertical_via_transpose () =
  (* y-direction leaf compaction = x compaction of the transposed
     cell: the multiplier cell's vertical pitch (64) tightens too *)
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let basic =
    Rsg_layout.Db.find_exn sample.Rsg_core.Sample.db
      Rsg_mult.Sample_lib.basic_cell
  in
  let transposed =
    Rsg_layout.Reorient.cell Rsg_layout.Reorient.transpose basic
  in
  let specs =
    [ { Leaf.p_index = 1; p_dx = Rsg_mult.Sample_lib.cell_height; p_dy = 0;
        p_weight = 100 } ]
  in
  let r = Leaf.compact Rules.default transposed ~pitches:specs in
  let pitch = List.assoc 1 r.Leaf.pitches in
  (* the cell is drawn full-height (rails on both edges), so the
     vertical pitch is already minimal: the compactor must neither
     grow it nor break the strip *)
  Alcotest.(check int) "vertical pitch already minimal"
    Rsg_mult.Sample_lib.cell_height pitch;
  Alcotest.(check bool) "strip legal" true
    (Leaf.verify Rules.default r ~pitches:specs);
  (* under the tighter process the rail spacing relaxes and the pitch
     does shrink *)
  let r' = Leaf.compact Rules.tight transposed ~pitches:specs in
  Alcotest.(check bool) "tight process shrinks or holds" true
    (List.assoc 1 r'.Leaf.pitches <= pitch);
  Alcotest.(check bool) "tight strip legal" true
    (Leaf.verify Rules.tight r' ~pitches:specs)

let test_leaf_compacts_real_multiplier_cell () =
  (* the thesis's motivating case: transport the multiplier's actual
     basic cell to both rule sets, with legal strips at the new pitch *)
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let basic =
    Rsg_layout.Db.find_exn sample.Rsg_core.Sample.db
      Rsg_mult.Sample_lib.basic_cell
  in
  let specs =
    [ { Leaf.p_index = 1; p_dx = Rsg_mult.Sample_lib.cell_width; p_dy = 0;
        p_weight = 100 } ]
  in
  List.iter
    (fun rules ->
      let r = Leaf.compact rules basic ~pitches:specs in
      let pitch = List.assoc 1 r.Leaf.pitches in
      Alcotest.(check bool) "pitch shrank" true
        (pitch < Rsg_mult.Sample_lib.cell_width);
      Alcotest.(check bool) "strip legal" true
        (Leaf.verify rules r ~pitches:specs))
    [ Rules.default; Rules.tight ]

let tradeoff_cell () =
  (* T high bar and B low bar; the diagonal pitch wants B pushed
     right, the position cost wants it left *)
  let c = Rsg_layout.Cell.create "tradeoff" in
  Rsg_layout.Cell.add_box c Layer.Metal (box 8 6 12 8);  (* T *)
  Rsg_layout.Cell.add_box c Layer.Metal (box 0 0 4 2);   (* B *)
  c

let test_leaf_cost_function_tradeoff () =
  (* Figures 6.1/6.2: the optimal pitches depend on the replication
     weights.  A heavier weight on the diagonal pitch buys it down. *)
  let run w2 =
    let specs =
      [ { Leaf.p_index = 1; p_dx = 16; p_dy = 0; p_weight = 1 };
        { Leaf.p_index = 2; p_dx = 14; p_dy = 6; p_weight = w2 } ]
    in
    let r = Leaf.compact Rules.default (tradeoff_cell ()) ~pitches:specs in
    match r.Leaf.lp_pitches with
    | Some ps -> List.assoc 2 ps
    | None -> Alcotest.fail "no LP solution"
  in
  let light = run 1 and heavy = run 100 in
  Alcotest.(check bool)
    (Printf.sprintf "heavy weight shrinks pitch 2 (%.2f -> %.2f)" light heavy)
    true (heavy < light -. 0.5)

let test_leaf_vs_flat_cost () =
  (* compacting the leaf once generates far fewer constraints than
     compacting an assembled strip (section 6.1) *)
  let cell = two_bar_cell () in
  let spec = { Leaf.p_index = 1; p_dx = 20; p_dy = 0; p_weight = 1 } in
  let leaf = Leaf.compact Rules.default cell ~pitches:[ spec ] in
  let items = Scanline.items_of_cell cell in
  let flat n =
    Array.concat
      (List.init n (fun k ->
           Array.map
             (fun (it : Scanline.item) ->
               { it with
                 Scanline.box = Box.translate (Vec.make (k * 20) 0) it.Scanline.box })
             items))
  in
  let r50 = Compactor.compact Rules.default (flat 50) in
  Alcotest.(check bool) "flat constraints grow with replication" true
    (r50.Compactor.n_constraints > 10 * leaf.Leaf.n_constraints)

(* ------------------------------------------------------------------ *)
(* Contact expansion (fig 6.9)                                        *)

let test_contact_expansion_counts () =
  (* default rules: cut 2, spacing 2, overlap 1.  A w-wide contact
     fits 1 + (w - 2 - 2)/4 cuts per axis. *)
  let count w h =
    List.length (Expand_contact.cuts_for Rules.default (box 0 0 w h))
  in
  Alcotest.(check int) "4x4 -> 1 cut" 1 (count 4 4);
  Alcotest.(check int) "8x4 -> 2 cuts" 2 (count 8 4);
  Alcotest.(check int) "12x4 -> 3" 3 (count 12 4);
  Alcotest.(check int) "8x8 -> 4" 4 (count 8 8);
  Alcotest.(check int) "12x8 -> 6" 6 (count 12 8)

let test_contact_expansion_geometry () =
  let b = box 0 0 8 4 in
  let expanded = Expand_contact.expand_box Rules.default b in
  let metals = List.filter (fun (l, _) -> l = Layer.Metal) expanded in
  let cuts = List.filter (fun (l, _) -> l = Layer.Contact_cut) expanded in
  Alcotest.(check int) "one metal plate" 1 (List.length metals);
  List.iter
    (fun (_, cut) ->
      Alcotest.(check bool) "cut inside with margin" true
        (cut.Box.xmin >= 1 && cut.Box.xmax <= 7 && cut.Box.ymin >= 1
        && cut.Box.ymax <= 3))
    cuts;
  (* cuts respect mutual spacing *)
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.iter
    (fun ((_, a), (_, b)) ->
      Alcotest.(check bool) "cut spacing" true
        (b.Box.xmin - a.Box.xmax >= 2 || a.Box.xmin - b.Box.xmax >= 2
        || b.Box.ymin - a.Box.ymax >= 2 || a.Box.ymin - b.Box.ymax >= 2))
    (pairs cuts)

let test_contact_too_small () =
  Alcotest.(check bool) "tiny contact rejected" true
    (try ignore (Expand_contact.cuts_for Rules.default (box 0 0 3 3)); false
     with Invalid_argument _ -> true)

let test_expand_cell () =
  let c = Rsg_layout.Cell.create "withcontact" in
  Rsg_layout.Cell.add_box c Layer.Contact (box 0 0 8 8);
  Rsg_layout.Cell.add_box c Layer.Metal (box 20 0 23 3);
  let out = Expand_contact.expand_cell Rules.default c in
  let layers = List.map fst (Rsg_layout.Cell.boxes out) in
  Alcotest.(check bool) "no synthetic layer remains" true
    (not (List.mem Layer.Contact layers));
  Alcotest.(check int) "boxes" (1 + 2 + 4) (List.length layers)

(* ------------------------------------------------------------------ *)
(* Two-dimensional (alternating) compaction                           *)

let test_transpose_involution () =
  let items =
    [| item Layer.Metal (box 0 0 3 10); item Layer.Poly (box 5 (-2) 9 4) |]
  in
  let back = Scanline.transpose (Scanline.transpose items) in
  Alcotest.(check bool) "involution" true
    (Array.for_all2
       (fun (a : Scanline.item) (b : Scanline.item) ->
         a.Scanline.layer = b.Scanline.layer && Box.equal a.Scanline.box b.Scanline.box)
       items back);
  Alcotest.(check int) "width becomes height" (Scanline.width items)
    (Scanline.height (Scanline.transpose items))

let test_compact_xy () =
  let scattered =
    [| item Layer.Metal (box 0 0 3 10);
       item Layer.Metal (box 20 20 23 30);
       item Layer.Poly (box 10 40 14 44);
       item Layer.Diffusion (box 30 5 34 9) |]
  in
  let r = Compactor.compact_xy Rules.default scattered in
  Alcotest.(check bool) "area shrinks" true
    (r.Compactor.area_after < r.Compactor.area_before);
  Alcotest.(check (list (of_pp Fmt.nop))) "legal in x" []
    (Scanline.check Rules.default r.Compactor.items2);
  Alcotest.(check (list (of_pp Fmt.nop))) "legal in y" []
    (Scanline.check Rules.default (Scanline.transpose r.Compactor.items2));
  (* a second run finds nothing more (greedy fixpoint) *)
  let r2 = Compactor.compact_xy Rules.default r.Compactor.items2 in
  Alcotest.(check int) "idempotent" r.Compactor.area_after
    r2.Compactor.area_after

let test_compact_xy_beats_1d () =
  (* a staircase that 1-D x compaction barely helps but x+y collapses *)
  let stair =
    Array.init 4 (fun i -> item Layer.Metal (box (20 * i) (20 * i) ((20 * i) + 3) ((20 * i) + 10)))
  in
  let x_only = Compactor.compact Rules.default stair in
  let xy = Compactor.compact_xy Rules.default stair in
  let x_area =
    Scanline.width x_only.Compactor.items * Scanline.height x_only.Compactor.items
  in
  Alcotest.(check bool) "xy beats x alone" true
    (xy.Compactor.area_after < x_area)

let prop_compaction_legal_random =
  (* random box soups compact to legal layouts and never grow *)
  let gen_items =
    QCheck.make
      QCheck.Gen.(
        let gen_item =
          let* l = oneofl [ Layer.Metal; Layer.Poly; Layer.Diffusion ] in
          let* x = int_range 0 60 and* y = int_range 0 40 in
          let* w = int_range 2 10 and* h = int_range 2 10 in
          return (item l (box x y (x + w) (y + h)))
        in
        let* n = int_range 2 12 in
        let* l = list_size (return n) gen_item in
        return (Array.of_list l))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"random layouts compact legally"
       gen_items (fun items ->
         match Compactor.compact Rules.default items with
         | r ->
           let legal_in = Scanline.check Rules.default items = [] in
           Scanline.check Rules.default r.Compactor.items = []
           (* width never grows for legal inputs; an illegal input may
              legitimately widen while being legalised *)
           && ((not legal_in)
              || r.Compactor.width_after <= r.Compactor.width_before)
         | exception Bellman.Infeasible _ ->
           (* contradictory device-freeze + connectivity systems from
              pathological overlaps; rejecting is fine *)
           true))

let () =
  Alcotest.run "rsg_compact"
    [ ("bellman",
       [ Alcotest.test_case "chain" `Quick test_bellman_chain;
         Alcotest.test_case "infeasible" `Quick test_bellman_infeasible;
         Alcotest.test_case "infeasible witness" `Quick
           test_infeasible_witness;
         Alcotest.test_case "unbounded" `Quick test_bellman_unbounded;
         Alcotest.test_case "negative weights" `Quick
           test_bellman_negative_weights;
         Alcotest.test_case "sorted edge speedup" `Quick
           test_sorted_edge_speedup;
         prop_worklist_matches_fixed ]);
      ("constraints",
       [ Alcotest.test_case "fragmented bus (fig 6.5)" `Quick
           test_fragmented_bus;
         Alcotest.test_case "spacing compaction" `Quick test_spacing_compaction;
         Alcotest.test_case "device frozen" `Quick test_device_frozen;
         Alcotest.test_case "contact enclosure" `Quick test_contact_enclosure;
         Alcotest.test_case "checker" `Quick test_checker_finds_violations;
         Alcotest.test_case "legal output" `Quick test_compaction_is_legal;
         Alcotest.test_case "stretchable bus" `Quick test_stretchable_bus ]);
      ("slack",
       [ Alcotest.test_case "leftmost worsens jogs (fig 6.8)" `Quick
           test_leftmost_worsens_jog;
         Alcotest.test_case "distribution repairs jogs" `Quick
           test_slack_distribution_repairs_jog;
         Alcotest.test_case "fig 6.8 golden jogs" `Quick test_jog_golden;
         prop_slack_never_worse;
         Alcotest.test_case "rightmost bounds" `Quick test_rightmost_bounds ]);
      ("simplex",
       [ Alcotest.test_case "basic" `Quick test_simplex_basic;
         Alcotest.test_case "free variables" `Quick test_simplex_free_vars;
         Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
         Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
         Alcotest.test_case "difference constraints" `Quick
           test_simplex_difference_constraints ]);
      ("leaf",
       [ Alcotest.test_case "pitch shrinks" `Quick test_leaf_pitch_shrinks;
         Alcotest.test_case "identical instances" `Quick
           test_leaf_identical_instances;
         Alcotest.test_case "cost tradeoff (fig 6.1)" `Quick
           test_leaf_cost_function_tradeoff;
         Alcotest.test_case "leaf vs flat cost" `Quick test_leaf_vs_flat_cost;
         Alcotest.test_case "real multiplier cell transports" `Quick
           test_leaf_compacts_real_multiplier_cell;
         Alcotest.test_case "vertical pitch via transpose" `Quick
           test_leaf_vertical_via_transpose ]);
      ("contacts",
       [ Alcotest.test_case "cut counts (fig 6.9)" `Quick
           test_contact_expansion_counts;
         Alcotest.test_case "geometry" `Quick test_contact_expansion_geometry;
         Alcotest.test_case "too small" `Quick test_contact_too_small;
         Alcotest.test_case "expand cell" `Quick test_expand_cell ]);
      ("two-dimensional",
       [ Alcotest.test_case "transpose involution" `Quick
           test_transpose_involution;
         Alcotest.test_case "alternating passes" `Quick test_compact_xy;
         Alcotest.test_case "xy beats 1d" `Quick test_compact_xy_beats_1d;
         prop_compaction_legal_random ]) ]

(* Tests for lib/obs: span nesting/aggregation, counters, the
   disabled-by-default no-op path, and the JSON rendering. *)

module Obs = Rsg_obs.Obs

let fresh () =
  Obs.reset ();
  Obs.enable ()

let test_disabled_records_nothing () =
  Obs.reset ();
  Obs.disable ();
  Obs.count "ignored";
  let r = Obs.span "ignored" (fun () -> 42) in
  Alcotest.(check int) "span passes value through" 42 r;
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.counters ());
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans ()))

let test_counters_accumulate () =
  fresh ();
  Obs.count "a";
  Obs.count ~n:5 "a";
  Obs.count ~n:2 "b";
  Obs.disable ();
  Obs.count "a";
  (* ignored: disabled *)
  Alcotest.(check (list (pair string int)))
    "sorted totals"
    [ ("a", 6); ("b", 2) ]
    (Obs.counters ())

let test_spans_nest_and_aggregate () =
  fresh ();
  for _ = 1 to 3 do
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> ());
        Obs.span "inner" (fun () -> ()))
  done;
  Obs.disable ();
  match Obs.spans () with
  | [ outer ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.sp_name;
    Alcotest.(check int) "outer entered 3x" 3 outer.Obs.sp_count;
    (match outer.Obs.sp_children with
    | [ inner ] ->
      (* same name under the same parent aggregates: 2 entries x 3 loops *)
      Alcotest.(check string) "inner name" "inner" inner.Obs.sp_name;
      Alcotest.(check int) "inner entered 6x" 6 inner.Obs.sp_count;
      Alcotest.(check bool) "child time <= parent time" true
        (inner.Obs.sp_total <= outer.Obs.sp_total +. 1e-9)
    | l ->
      Alcotest.fail
        (Printf.sprintf "expected one aggregated child, got %d"
           (List.length l)))
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected one top-level span, got %d" (List.length l))

let test_span_survives_raise () =
  fresh ();
  (try Obs.span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  (* the stack was unwound: a sibling span lands at top level, not
     under "boom" *)
  Obs.span "after" (fun () -> ());
  Obs.disable ();
  let names = List.map (fun s -> s.Obs.sp_name) (Obs.spans ()) in
  Alcotest.(check (list string)) "both top-level" [ "boom"; "after" ] names

let test_json_mentions_everything () =
  fresh ();
  Obs.span "phase \"one\"" (fun () -> Obs.count "widgets");
  Obs.disable ();
  let j = Obs.to_json () in
  let contains sub =
    let n = String.length sub and m = String.length j in
    let rec go i = i + n <= m && (String.sub j i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped span name" true
    (contains "phase \\\"one\\\"");
  Alcotest.(check bool) "counter present" true (contains "\"widgets\"");
  Alcotest.(check bool) "top-level keys" true
    (contains "\"spans\"" && contains "\"counters\"")

let test_reset_clears () =
  fresh ();
  Obs.count "a";
  Obs.span "s" (fun () -> ());
  Obs.reset ();
  Obs.disable ();
  Alcotest.(check (list (pair string int))) "counters gone" []
    (Obs.counters ());
  Alcotest.(check int) "spans gone" 0 (List.length (Obs.spans ()))

let () =
  Alcotest.run "rsg_obs"
    [ ("obs",
       [ Alcotest.test_case "disabled is a no-op" `Quick
           test_disabled_records_nothing;
         Alcotest.test_case "counters accumulate" `Quick
           test_counters_accumulate;
         Alcotest.test_case "spans nest and aggregate" `Quick
           test_spans_nest_and_aggregate;
         Alcotest.test_case "span survives raise" `Quick
           test_span_survives_raise;
         Alcotest.test_case "json rendering" `Quick
           test_json_mentions_everything;
         Alcotest.test_case "reset clears" `Quick test_reset_clears ]) ]

(* Tests for the domain pool: results must be identical to a
   sequential Array.map for every pool size and chunking, and worker
   exceptions must surface on the calling domain without hanging. *)

open Rsg_par

let squares n = Array.init n (fun i -> i)

let test_map_matches_sequential () =
  List.iter
    (fun n ->
      let xs = squares n in
      let expected = Array.map (fun x -> (x * x) + 1) xs in
      List.iter
        (fun domains ->
          let got = Par.map ~domains (fun x -> (x * x) + 1) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "map n=%d domains=%d" n domains)
            expected got)
        [ 1; 2; 3; 4 ])
    [ 0; 1; 2; 7; 100; 1_000 ]

let test_chunked_map_matches_sequential () =
  let xs = squares 257 in
  let expected = Array.map (fun x -> x * 3) xs in
  List.iter
    (fun domains ->
      List.iter
        (fun chunk ->
          let got = Par.chunked_map ~domains ~chunk (fun x -> x * 3) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "chunked domains=%d chunk=%d" domains chunk)
            expected got)
        [ 1; 2; 16; 300 ])
    [ 1; 2; 4 ]

(* Reduction over the mapped array is deterministic: the pool writes
   each slot by index, so element order never depends on scheduling. *)
let test_deterministic_order () =
  let xs = Array.init 500 (fun i -> i) in
  let seq = Par.map ~domains:1 (fun x -> x * 7) xs in
  for _ = 1 to 5 do
    let par = Par.map ~domains:4 (fun x -> x * 7) xs in
    Alcotest.(check bool) "same array" true (par = seq)
  done

exception Boom of int

let test_exception_propagates () =
  let xs = Array.init 100 (fun i -> i) in
  List.iter
    (fun domains ->
      match Par.map ~domains (fun x -> if x = 63 then raise (Boom x) else x) xs
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 63 -> ()
      | exception e ->
        Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e))
    [ 1; 2; 4 ]

let test_default_domains_env () =
  Alcotest.(check bool) "recommended >= 1" true (Par.recommended () >= 1);
  Alcotest.(check bool) "default >= 1" true (Par.default_domains () >= 1)

let () =
  Alcotest.run "rsg_par"
    [ ("map",
       [ Alcotest.test_case "matches sequential" `Quick
           test_map_matches_sequential;
         Alcotest.test_case "chunked matches sequential" `Quick
           test_chunked_map_matches_sequential;
         Alcotest.test_case "deterministic order" `Quick
           test_deterministic_order ]);
      ("failure",
       [ Alcotest.test_case "exception propagates" `Quick
           test_exception_propagates ]);
      ("config",
       [ Alcotest.test_case "domain counts" `Quick test_default_domains_env ])
    ]

(* Tests for the multiplier subsystem (Chapter 5): the Baugh-Wooley
   logic model, pipelining, the sample library, the native layout
   generator, and the Appendix B design file. *)

open Rsg_geom
open Rsg_layout
open Rsg_core
open Rsg_mult

(* ------------------------------------------------------------------ *)
(* Logic model                                                        *)

let test_cell_type_rule () =
  let m = 5 and n = 4 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let expected =
        if (i = m - 1) <> (j = n - 1) then Multiplier.Type_II
        else Multiplier.Type_I
      in
      Alcotest.(check bool)
        (Printf.sprintf "cell (%d,%d)" i j)
        true
        (Multiplier.cell_type ~m ~n ~i ~j = expected)
    done
  done;
  (* corner is type I even though it involves both MSBs *)
  Alcotest.(check bool) "corner" true
    (Multiplier.cell_type ~m ~n ~i:(m - 1) ~j:(n - 1) = Multiplier.Type_I)

let test_exhaustive_small () =
  List.iter
    (fun (m, n) ->
      let t = Multiplier.build ~m ~n () in
      for a = -(1 lsl (m - 1)) to (1 lsl (m - 1)) - 1 do
        for b = -(1 lsl (n - 1)) to (1 lsl (n - 1)) - 1 do
          Alcotest.(check int)
            (Printf.sprintf "%dx%d: %d*%d" m n a b)
            (Multiplier.reference_product ~m ~n a b)
            (Multiplier.multiply t a b)
        done
      done)
    [ (2, 2); (3, 3); (4, 4); (2, 5); (5, 2); (3, 4); (4, 3) ]

let prop_random_products =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"8x8 combinational equals reference"
       (QCheck.pair (QCheck.int_range (-128) 127) (QCheck.int_range (-128) 127))
       (fun (a, b) ->
         let t = Multiplier.build ~m:8 ~n:8 () in
         Multiplier.multiply t a b = a * b))

let test_range_checks () =
  let t = Multiplier.build ~m:4 ~n:4 () in
  Alcotest.(check bool) "a too big" true
    (try ignore (Multiplier.multiply t 8 0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "b too small" true
    (try ignore (Multiplier.multiply t 0 (-9)); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad sizes" true
    (try ignore (Multiplier.build ~m:1 ~n:4 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad beta" true
    (try ignore (Multiplier.build ~beta:0 ~m:4 ~n:4 ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pipelining (fig 5.2)                                               *)

let test_pipelined_correctness () =
  List.iter
    (fun beta ->
      let t = Multiplier.build ~beta ~m:5 ~n:4 () in
      let s = Multiplier.stats t in
      Alcotest.(check bool)
        (Printf.sprintf "beta=%d bounds comb depth" beta)
        true
        (s.Multiplier.max_comb_depth <= beta);
      for a = -16 to 15 do
        for b = -8 to 7 do
          Alcotest.(check int)
            (Printf.sprintf "beta=%d %d*%d" beta a b)
            (Multiplier.reference_product ~m:5 ~n:4 a b)
            (Multiplier.multiply t a b)
        done
      done)
    [ 1; 2; 3; 4 ]

let test_bit_systolic_depth_one () =
  (* Figure 5.2a: at most ONE full adder delay between registers. *)
  let t = Multiplier.build ~beta:1 ~m:6 ~n:6 () in
  Alcotest.(check int) "max depth 1" 1
    (Multiplier.stats t).Multiplier.max_comb_depth

let test_streaming_throughput () =
  let t = Multiplier.build ~beta:1 ~m:6 ~n:6 () in
  let pairs =
    [ (31, -32); (-32, -32); (0, 17); (-1, -1); (5, 5); (-17, 20); (1, -9) ]
  in
  let results = Multiplier.multiply_stream t pairs in
  List.iter2
    (fun (a, b) p ->
      Alcotest.(check int) (Printf.sprintf "stream %d*%d" a b) (a * b) p)
    pairs results

let test_pipelining_tradeoffs () =
  (* Deeper pipelining (smaller beta): more registers, more latency;
     combinational: none. *)
  let stats beta = Multiplier.stats (Multiplier.build ?beta ~m:6 ~n:6 ()) in
  let s1 = stats (Some 1) and s2 = stats (Some 2) and sc = stats None in
  Alcotest.(check bool) "beta=1 has more registers than beta=2" true
    (s1.Multiplier.registers > s2.Multiplier.registers);
  Alcotest.(check bool) "beta=1 has higher latency" true
    (s1.Multiplier.latency_cycles > s2.Multiplier.latency_cycles);
  Alcotest.(check int) "combinational has no registers" 0
    sc.Multiplier.registers;
  Alcotest.(check int) "combinational latency 0" 0 sc.Multiplier.latency_cycles;
  Alcotest.(check bool) "input skew present when pipelined" true
    (s1.Multiplier.input_skew > 0);
  Alcotest.(check bool) "register table covers count" true
    (List.fold_left
       (fun acc e -> acc + e.Cellnet.re_count)
       0
       (Cellnet.register_table (Multiplier.build ~beta:1 ~m:4 ~n:4 ()).Multiplier.net)
     > 0)

let test_adder_cell_count () =
  (* m*n carry-save cells + m carry-propagate cells. *)
  let t = Multiplier.build ~m:5 ~n:3 () in
  Alcotest.(check int) "adder cells" ((5 * 3) + 5)
    (Multiplier.stats t).Multiplier.adder_cells

(* ------------------------------------------------------------------ *)
(* Sample library                                                     *)

let test_sample_extraction () =
  let s, decls = Sample_lib.build () in
  (* one declaration per assembly, none duplicated *)
  Alcotest.(check int) "22 interfaces" 22 (List.length decls);
  Alcotest.(check bool) "no duplicates" true
    (List.for_all (fun d -> not d.Sample.d_duplicate) decls);
  (* spot checks *)
  Alcotest.(check bool) "cell-cell horizontal" true
    (Interface_table.mem s.Sample.table ~from:"cell" ~into:"cell" ~index:1);
  Alcotest.(check bool) "cell-topreg" true
    (Interface_table.mem s.Sample.table ~from:"cell" ~into:"tr" ~index:1);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " loaded") true (Db.mem s.Sample.db name))
    ([ "cell"; "t1"; "t2"; "clk1"; "clk2"; "car1"; "car2"; "tr"; "br"; "rr" ]
    @ Sample_lib.dir_masks)

let test_sample_cif_roundtrip () =
  (* The whole sample layout survives CIF. *)
  List.iter
    (fun asm ->
      let r = Cif.of_string (Cif.to_string asm) in
      let asm' = Db.find_exn r.Cif.db asm.Cell.cname in
      Alcotest.(check bool)
        (asm.Cell.cname ^ " round trips")
        true
        (Cif.roundtrip_equal asm asm'))
    (Sample_lib.assemblies ())

(* ------------------------------------------------------------------ *)
(* Layout generation                                                  *)

let test_generated_counts () =
  List.iter
    (fun (xsize, ysize) ->
      let g = Layout_gen.generate ~xsize ~ysize () in
      let st = Flatten.stats g.Layout_gen.whole in
      let counted =
        List.filter
          (fun (name, _) ->
            not
              (List.mem name
                 [ "array"; "topregs"; "bottomregs"; "rightregs" ]))
          st.Flatten.by_cell
      in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%dx%d mask counts" xsize ysize)
        (Layout_gen.expected_mask_counts ~xsize ~ysize)
        counted)
    [ (2, 2); (4, 4); (3, 5); (6, 3) ]

let test_basic_cell_grid () =
  let xsize = 4 and ysize = 3 in
  let g = Layout_gen.generate ~xsize ~ysize () in
  let positions = Layout_gen.mask_positions g.Layout_gen.whole "cell" in
  let expected =
    List.concat_map
      (fun x ->
        List.map
          (fun y ->
            Vec.make
              ((x - 1) * Sample_lib.cell_width)
              ((y - 1) * Sample_lib.cell_height))
          (List.init (ysize + 1) (fun j -> j + 1)))
      (List.init xsize (fun i -> i + 1))
    |> List.sort Vec.compare
  in
  Alcotest.(check bool) "cells on the pitch grid" true (positions = expected)

let test_personalisation_matches_logic () =
  (* The t2 masks in the layout must sit exactly on the Type_II cells
     of the logic model (carry-save rows only; the cpa row is t1). *)
  let xsize = 5 and ysize = 4 in
  let g = Layout_gen.generate ~xsize ~ysize () in
  let mask_offset = Vec.make 6 28 in
  let got =
    Layout_gen.mask_positions g.Layout_gen.whole "t2"
    |> List.map (fun p ->
           let q = Vec.sub p mask_offset in
           (q.Vec.x / Sample_lib.cell_width, q.Vec.y / Sample_lib.cell_height))
    |> List.sort compare
  in
  let expected = ref [] in
  for i = 0 to xsize - 1 do
    for j = 0 to ysize - 1 do
      if Multiplier.cell_type ~m:xsize ~n:ysize ~i ~j = Multiplier.Type_II
      then expected := (i, j) :: !expected
    done
  done;
  let expected = List.sort compare !expected in
  Alcotest.(check bool) "type II placement" true (got = expected)

let test_register_stack_shapes () =
  let xsize = 4 and ysize = 4 in
  let g = Layout_gen.generate ~xsize ~ysize () in
  let st = Flatten.stats g.Layout_gen.whole in
  let count name = List.assoc name st.Flatten.by_cell in
  Alcotest.(check int) "top stack is triangular" (xsize * (xsize + 1) / 2)
    (count "tr");
  Alcotest.(check int) "bottom stack is triangular" (xsize * (xsize + 1) / 2)
    (count "br");
  let regnum = (3 * ysize) + 1 in
  let length = (regnum / 2) + 1 in
  Alcotest.(check int) "right bank" (ysize * length) (count "rr")

let test_whole_multiplier_cif () =
  let g = Layout_gen.generate ~xsize:3 ~ysize:3 () in
  let r = Cif.of_string (Cif.to_string g.Layout_gen.whole) in
  let back = Db.find_exn r.Cif.db g.Layout_gen.whole.Cell.cname in
  Alcotest.(check bool) "whole multiplier survives CIF" true
    (Cif.roundtrip_equal g.Layout_gen.whole back)

(* ------------------------------------------------------------------ *)
(* E17: the interpreted design file equals the native generator.      *)

let test_design_file_equivalence () =
  List.iter
    (fun (xsize, ysize) ->
      let native = Layout_gen.generate ~xsize ~ysize () in
      let _, interpreted = Design_file.generate ~xsize ~ysize () in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d geometry identical" xsize ysize)
        true
        (Cif.roundtrip_equal native.Layout_gen.whole interpreted);
      let sn = Flatten.stats native.Layout_gen.whole in
      let si = Flatten.stats interpreted in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%dx%d instance census" xsize ysize)
        sn.Flatten.by_cell si.Flatten.by_cell)
    [ (2, 2); (4, 4); (3, 5) ]

let test_design_file_retarget () =
  (* The same design file generates against a re-extracted sample —
     decoupling of procedural and graphical information. *)
  let sample, _ = Sample_lib.build () in
  let _, cell = Design_file.generate ~sample ~xsize:2 ~ysize:2 () in
  Alcotest.(check string) "created" "thewholething" cell.Cell.cname

let test_sample_through_cif_file () =
  (* the full figure 1.1 flow with the sample as a layout file: write
     every assembly into one CIF, read it back, re-extract, and the
     design file must generate the identical multiplier *)
  let container = Cell.create "sample-container" in
  List.iter
    (fun a -> ignore (Cell.add_instance container ~at:Rsg_geom.Vec.zero a))
    (Sample_lib.assemblies ());
  let r = Cif.of_string (Cif.to_string container) in
  let sample, decls = Sample.of_db r.Cif.db in
  Alcotest.(check int) "all interfaces re-extracted" 22 (List.length decls);
  let _, via_file = Design_file.generate ~sample ~xsize:3 ~ysize:3 () in
  let direct = Layout_gen.generate ~xsize:3 ~ysize:3 () in
  Alcotest.(check bool) "identical through the file" true
    (Cif.roundtrip_equal via_file direct.Layout_gen.whole)

let test_headline_32x32 () =
  (* the thesis's headline case: a 32x32 multiplier through the design
     file, with the instance census predicted from the rules *)
  let _, cell = Design_file.generate ~xsize:32 ~ysize:32 () in
  let st = Flatten.stats cell in
  let counted =
    List.filter
      (fun (name, _) ->
        not (List.mem name [ "array"; "topregs"; "bottomregs"; "rightregs" ]))
      st.Flatten.by_cell
  in
  Alcotest.(check (list (pair string int))) "32x32 census"
    (Layout_gen.expected_mask_counts ~xsize:32 ~ysize:32)
    counted;
  (* and the 16x16 pipelined model multiplies correctly on samples *)
  let t = Multiplier.build ~beta:2 ~m:16 ~n:16 () in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
        (Multiplier.multiply t a b))
    [ (32767, -32768); (-32768, -32768); (12345, 321); (-1, 1) ]

let test_timed_generate () =
  let phases, cell = Design_file.timed_generate ~xsize:4 ~ysize:4 in
  Alcotest.(check bool) "cif written" true (phases.Design_file.cif_bytes > 1000);
  Alcotest.(check bool) "all phases measured" true
    (phases.Design_file.t_read_sample >= 0.
    && phases.Design_file.t_execute >= 0.
    && phases.Design_file.t_write >= 0.);
  Alcotest.(check string) "cell" "thewholething" cell.Cell.cname

let test_register_table_sums () =
  (* the register configuration table accounts for every register *)
  let t = Multiplier.build ~beta:2 ~m:5 ~n:4 () in
  let table = Cellnet.register_table t.Multiplier.net in
  let total = List.fold_left (fun acc e -> acc + e.Cellnet.re_count) 0 table in
  Alcotest.(check int) "table covers register count"
    (Multiplier.stats t).Multiplier.registers total;
  (* every entry is positive and every output-deskew entry names bus p *)
  Alcotest.(check bool) "entries positive" true
    (List.for_all (fun e -> e.Cellnet.re_count > 0) table);
  Alcotest.(check bool) "deskew names the product bus" true
    (List.for_all
       (fun e ->
         match e.Cellnet.re_to with
         | `Output (bus, _) -> bus = "p"
         | `Cell _ -> true)
       table)

(* ------------------------------------------------------------------ *)
(* Retiming (reference [18])                                          *)

let correlator () =
  (* the classic three-tap correlator: comparators (delay 3) on a
     registered chain, adders (delay 7) accumulating back to the host
     (delay 0); unretimed period 24, optimal 13 *)
  { Retime.n = 8;
    delay = [| 0; 3; 3; 3; 3; 7; 7; 7 |];
    edges =
      [ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 4, 1); (1, 5, 0); (2, 6, 0);
        (3, 7, 0); (4, 7, 0); (7, 6, 0); (6, 5, 0); (5, 0, 0) ] }

let test_retime_correlator () =
  let g = correlator () in
  Alcotest.(check int) "unretimed period" 24 (Retime.clock_period g);
  let c, r = Retime.min_period g in
  Alcotest.(check int) "optimal period" 13 c;
  let g' = Retime.apply g r in
  Alcotest.(check int) "achieved period" 13 (Retime.clock_period g')

let test_retime_validate () =
  let raises g = try Retime.validate g; false with Retime.Bad_graph _ -> true in
  Alcotest.(check bool) "register-free cycle" true
    (raises { Retime.n = 2; delay = [| 1; 1 |]; edges = [ (0, 1, 0); (1, 0, 0) ] });
  Alcotest.(check bool) "negative weight" true
    (raises { Retime.n = 2; delay = [| 1; 1 |]; edges = [ (0, 1, -1) ] });
  Alcotest.(check bool) "range" true
    (raises { Retime.n = 2; delay = [| 1; 1 |]; edges = [ (0, 5, 1) ] });
  (* a registered cycle is fine *)
  Retime.validate
    { Retime.n = 2; delay = [| 1; 1 |]; edges = [ (0, 1, 0); (1, 0, 1) ] }

let test_retime_infeasible_period () =
  let g = correlator () in
  Alcotest.(check (option (array int))) "period below max delay" None
    (Retime.retime_for g ~period:6)

let test_retime_identity () =
  (* retiming by all zeros changes nothing *)
  let g = correlator () in
  let g' = Retime.apply g (Array.make 8 0) in
  Alcotest.(check int) "same registers" (Retime.total_registers g)
    (Retime.total_registers g');
  Alcotest.(check int) "same period" (Retime.clock_period g)
    (Retime.clock_period g')

let prop_retime_legal =
  (* random registered ring + chords: min_period yields a legal
     retiming whose achieved period matches *)
  let gen_graph =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 3 8 in
        let* delays = array_size (return n) (int_range 1 9) in
        let* chords =
          list_size (int_range 0 5)
            (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 2))
        in
        let ring = List.init n (fun i -> (i, (i + 1) mod n, 1)) in
        return { Retime.n; delay = delays; edges = ring @ chords })
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"min_period returns legal optimum"
       gen_graph (fun g ->
         (* drop graphs with register-free cycles from chords *)
         match Retime.validate g with
         | exception Retime.Bad_graph _ -> true
         | () ->
           let c, r = Retime.min_period g in
           let g' = Retime.apply g r in
           Retime.clock_period g' = c
           && c <= Retime.clock_period g
           && List.for_all (fun (_, _, w) -> w >= 0) g'.Retime.edges))

(* ------------------------------------------------------------------ *)
(* A vector adder from the multiplier's sample (section 1.2.2's
   sample-reuse claim)                                                *)

let test_adder_layout_from_multiplier_sample () =
  let sample, _ = Sample_lib.build () in
  (* generate a multiplier AND an adder from the very same sample *)
  let mult = Layout_gen.generate ~sample ~xsize:3 ~ysize:3 () in
  let adder = Adder_gen.generate ~sample ~bits:6 () in
  ignore mult;
  let st = Flatten.stats adder.Adder_gen.cell in
  let get name = try List.assoc name st.Flatten.by_cell with Not_found -> 0 in
  Alcotest.(check int) "six cells" 6 (get Sample_lib.basic_cell);
  Alcotest.(check int) "all type I" 6 (get Sample_lib.type1);
  Alcotest.(check int) "carry chain" 5 (get Sample_lib.car1);
  Alcotest.(check int) "carry out" 1 (get Sample_lib.car2);
  (* a flat row on the horizontal pitch *)
  match st.Flatten.bbox with
  | Some b ->
    Alcotest.(check int) "row width" (6 * Sample_lib.cell_width) (Box.width b)
  | None -> Alcotest.fail "empty adder"

let test_adder_model_exhaustive () =
  let m = Adder_gen.build_model ~bits:5 () in
  for a = 0 to 31 do
    for b = 0 to 31 do
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b)
        (Adder_gen.add m a b)
    done
  done

let test_adder_pipelined () =
  let m = Adder_gen.build_model ~beta:1 ~bits:8 () in
  Alcotest.(check bool) "has latency" true (Adder_gen.latency m > 0);
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b)
        (Adder_gen.add m a b))
    [ (255, 255); (0, 0); (128, 127); (200, 56) ]

let () =
  Alcotest.run "rsg_mult"
    [ ("logic",
       [ Alcotest.test_case "cell type rule" `Quick test_cell_type_rule;
         Alcotest.test_case "exhaustive small sizes" `Slow test_exhaustive_small;
         prop_random_products;
         Alcotest.test_case "range checks" `Quick test_range_checks ]);
      ("pipeline",
       [ Alcotest.test_case "correct for beta 1-4" `Slow
           test_pipelined_correctness;
         Alcotest.test_case "bit-systolic depth 1" `Quick
           test_bit_systolic_depth_one;
         Alcotest.test_case "streaming throughput" `Quick
           test_streaming_throughput;
         Alcotest.test_case "register/latency tradeoffs" `Quick
           test_pipelining_tradeoffs;
         Alcotest.test_case "adder cell count" `Quick test_adder_cell_count;
         Alcotest.test_case "register table sums" `Quick
           test_register_table_sums ]);
      ("sample",
       [ Alcotest.test_case "extraction" `Quick test_sample_extraction;
         Alcotest.test_case "cif round trip" `Quick test_sample_cif_roundtrip ]);
      ("layout",
       [ Alcotest.test_case "mask counts" `Quick test_generated_counts;
         Alcotest.test_case "basic cell grid" `Quick test_basic_cell_grid;
         Alcotest.test_case "personalisation matches logic" `Quick
           test_personalisation_matches_logic;
         Alcotest.test_case "register stacks" `Quick test_register_stack_shapes;
         Alcotest.test_case "whole multiplier cif" `Quick
           test_whole_multiplier_cif ]);
      ("design-file",
       [ Alcotest.test_case "equivalence with native (E17)" `Slow
           test_design_file_equivalence;
         Alcotest.test_case "retargeting" `Quick test_design_file_retarget;
         Alcotest.test_case "sample through a CIF file" `Quick
           test_sample_through_cif_file;
         Alcotest.test_case "headline 32x32" `Slow test_headline_32x32;
         Alcotest.test_case "timed generation" `Quick test_timed_generate ]);
      ("retime",
       [ Alcotest.test_case "correlator" `Quick test_retime_correlator;
         Alcotest.test_case "validation" `Quick test_retime_validate;
         Alcotest.test_case "infeasible period" `Quick
           test_retime_infeasible_period;
         Alcotest.test_case "identity retiming" `Quick test_retime_identity;
         prop_retime_legal ]);
      ("adder",
       [ Alcotest.test_case "layout from the multiplier sample" `Quick
           test_adder_layout_from_multiplier_sample;
         Alcotest.test_case "model exhaustive 5-bit" `Slow
           test_adder_model_exhaustive;
         Alcotest.test_case "pipelined" `Quick test_adder_pipelined ]) ]

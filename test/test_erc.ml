(* Tests for the static electrical rule checker: one synthetic fixture
   per rule, the generated families' golden cleanliness, domain-count
   determinism, cached replay and the mutation self-check. *)

open Rsg_geom
open Rsg_erc.Erc

let box x0 y0 x1 y1 = Box.make ~xmin:x0 ~ymin:y0 ~xmax:x1 ~ymax:y1

let item layer b = { Rsg_compact.Scanline.layer; box = b }

let no_ports = { default_config with ports_at_boundary = false }

let codes (r : Rsg_lint.Diag.report) c =
  List.length
    (List.filter (fun (d : Rsg_lint.Diag.t) -> d.Rsg_lint.Diag.code = c)
       r.Rsg_lint.Diag.r_diags)

let run ?cfg items labels =
  let _, r = check_items ?cfg items labels in
  r

(* one transistor: poly crossing a diffusion, both sides left over *)
let transistor =
  [| item Layer.Poly (box 0 6 10 8); item Layer.Diffusion (box 2 0 6 14) |]

(* ------------------------------------------------------------------ *)
(* Per-rule fixtures                                                  *)

let test_floating_gate () =
  let r = run ~cfg:no_ports transistor [] in
  Alcotest.(check int) "one floating gate" 1 (codes r "E301");
  Alcotest.(check bool) "warnings do not make it unclean" true
    (Rsg_lint.Diag.clean r)

let test_boundary_port_drives_gate () =
  (* same geometry, default config: the poly reaches the design
     boundary, so it counts as an externally driven port *)
  let r = run transistor [] in
  Alcotest.(check int) "no floating gate" 0 (codes r "E301")

let test_terminal_drives_gate () =
  let r = run ~cfg:no_ports transistor [ ("in", Vec.make 1 7) ] in
  Alcotest.(check int) "no floating gate" 0 (codes r "E301")

let test_strict_escalates () =
  let r = run ~cfg:{ no_ports with strict = true } transistor [] in
  Alcotest.(check int) "still one E301" 1 (codes r "E301");
  Alcotest.(check bool) "strict makes it an error" false
    (Rsg_lint.Diag.clean r)

let test_supply_short () =
  let items = [| item Layer.Metal (box 0 0 40 6) |] in
  let r =
    run items [ ("vdd", Vec.make 1 1); ("gnd", Vec.make 30 1) ]
  in
  Alcotest.(check int) "one supply short" 1 (codes r "E300");
  Alcotest.(check bool) "short is an error" false (Rsg_lint.Diag.clean r)

let test_undriven_net () =
  let r = run ~cfg:no_ports [| item Layer.Poly (box 0 0 4 4) |] [] in
  Alcotest.(check int) "one undriven net" 1 (codes r "E302")

let test_dangling_device () =
  (* the gate runs to the diffusion's lower edge: no source fragment *)
  let items =
    [| item Layer.Poly (box 8 10 22 14); item Layer.Diffusion (box 10 10 20 20) |]
  in
  let r = run items [] in
  Alcotest.(check int) "one dangling device" 1 (codes r "E303")

let test_fanout_limit () =
  let items =
    [| item Layer.Poly (box 0 10 40 12);
       item Layer.Diffusion (box 5 6 9 16);
       item Layer.Diffusion (box 15 6 19 16);
       item Layer.Diffusion (box 25 6 29 16) |]
  in
  let cfg = { default_config with max_fanout = 2 } in
  let r = run ~cfg items [] in
  Alcotest.(check int) "one fanout violation" 1 (codes r "E304");
  Alcotest.(check int) "within limit is silent" 0
    (codes (run items []) "E304")

let test_no_rail_path () =
  (* rails exist, but an interior transistor's channel cluster has no
     source/drain path to any rail or port *)
  let items =
    [| item Layer.Metal (box 0 0 60 4);          (* vdd rail *)
       item Layer.Metal (box 0 56 60 60);        (* output strip *)
       item Layer.Poly (box 18 24 26 28);
       item Layer.Diffusion (box 20 20 24 32) |]
  in
  let labels = [ ("vdd", Vec.make 1 1); ("g", Vec.make 19 25) ] in
  let r = run items labels in
  Alcotest.(check int) "both stranded channel nets flagged" 2
    (codes r "E305");
  Alcotest.(check int) "rails found, no E306" 0 (codes r "E306")

let test_rails_absent_note () =
  let r = run ~cfg:no_ports transistor [] in
  Alcotest.(check int) "one rails-absent note" 1 (codes r "E306")

(* ------------------------------------------------------------------ *)
(* Generated families                                                 *)

let families =
  lazy
    (let tt = Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ] in
     [ ("mult4",
        (Rsg_mult.Layout_gen.generate ~xsize:4 ~ysize:4 ())
          .Rsg_mult.Layout_gen.whole);
       ("pla", (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell);
       ("rom",
        (Rsg_pla.Rom.generate ~word_bits:4 [| 1; 9; 4; 13 |]).Rsg_pla.Rom.pla
          .Rsg_pla.Gen.cell);
       ("decoder", (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell) ])

let test_families_clean () =
  List.iter
    (fun (name, cell) ->
      let r = check_cell cell in
      Alcotest.(check bool) (name ^ " erc-clean") true (clean r);
      Alcotest.(check bool) (name ^ " has devices") true (r.r_devices > 0);
      Alcotest.(check bool) (name ^ " has nets") true (r.r_nets > 0))
    (Lazy.force families)

let test_domain_determinism () =
  List.iter
    (fun (name, cell) ->
      let j1 = report_to_json (check_cell ~domains:1 cell) in
      let j2 = report_to_json (check_cell ~domains:2 cell) in
      let j4 = report_to_json (check_cell ~domains:4 cell) in
      Alcotest.(check string) (name ^ " d1=d2") j1 j2;
      Alcotest.(check string) (name ^ " d1=d4") j1 j4)
    (Lazy.force families)

let test_cached_replay () =
  List.iter
    (fun (name, cell) ->
      let r1 = check_cell cell in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun l -> Hashtbl.replace tbl l.l_hash l.l_verdict)
        r1.r_levels;
      let r2 = check_cell ~cached:(Hashtbl.find_opt tbl) cell in
      Alcotest.(check int)
        (name ^ " every level replays")
        (List.length r2.r_levels) r2.r_cached;
      Alcotest.(check string)
        (name ^ " identical diagnostics")
        (Rsg_lint.Diag.report_to_json (to_diags r1))
        (Rsg_lint.Diag.report_to_json (to_diags r2));
      Alcotest.(check int) (name ^ " same nets") r1.r_nets r2.r_nets;
      Alcotest.(check int) (name ^ " same devices") r1.r_devices r2.r_devices)
    (Lazy.force families)

let test_verdict_census_matches_extraction () =
  (* a level's stored censuses agree with direct extraction *)
  List.iter
    (fun (name, cell) ->
      let r = check_cell cell in
      let root = List.nth r.r_levels (List.length r.r_levels - 1) in
      let mn = Rsg_extract.Extract.mos_of_cell cell in
      Alcotest.(check int) (name ^ " nets") mn.Rsg_extract.Extract.mn_n_nets
        root.l_verdict.cv_nets;
      Alcotest.(check int) (name ^ " devices")
        (Rsg_extract.Extract.n_mos mn)
        root.l_verdict.cv_devices)
    (Lazy.force families)

(* ------------------------------------------------------------------ *)
(* Mutation self-check                                                *)

let test_self_check_fixture () =
  (* seeding a probe into a tiny clean fixture yields exactly one new
     floating gate *)
  let items =
    [| item Layer.Metal (box 0 0 60 4);
       item Layer.Diffusion (box 20 20 40 40) |]
  in
  match self_check items [] with
  | Ok (probe, d) ->
    Alcotest.(check string) "code" "E301" d.Rsg_lint.Diag.code;
    Alcotest.(check bool) "probe crosses the diffusion" true
      (Box.overlaps probe (box 20 20 40 40))
  | Error e -> Alcotest.fail e

let test_self_check_families () =
  List.iter
    (fun (name, cell) ->
      match self_check_cell cell with
      | Ok (_, d) ->
        Alcotest.(check string) (name ^ " code") "E301" d.Rsg_lint.Diag.code
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    (Lazy.force families)

let () =
  Alcotest.run "erc"
    [ ( "rules",
        [ Alcotest.test_case "floating gate" `Quick test_floating_gate;
          Alcotest.test_case "boundary port" `Quick
            test_boundary_port_drives_gate;
          Alcotest.test_case "terminal drives" `Quick test_terminal_drives_gate;
          Alcotest.test_case "strict escalates" `Quick test_strict_escalates;
          Alcotest.test_case "supply short" `Quick test_supply_short;
          Alcotest.test_case "undriven net" `Quick test_undriven_net;
          Alcotest.test_case "dangling device" `Quick test_dangling_device;
          Alcotest.test_case "fanout limit" `Quick test_fanout_limit;
          Alcotest.test_case "no rail path" `Quick test_no_rail_path;
          Alcotest.test_case "rails absent" `Quick test_rails_absent_note ] );
      ( "families",
        [ Alcotest.test_case "erc-clean" `Quick test_families_clean;
          Alcotest.test_case "domain determinism" `Quick
            test_domain_determinism;
          Alcotest.test_case "cached replay" `Quick test_cached_replay;
          Alcotest.test_case "census matches extraction" `Quick
            test_verdict_census_matches_extraction ] );
      ( "self-check",
        [ Alcotest.test_case "fixture" `Quick test_self_check_fixture;
          Alcotest.test_case "families" `Quick test_self_check_families ] ) ]

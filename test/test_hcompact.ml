(* Tests for whole-structure hierarchical compaction (lib/compact
   Hcompact): per-prototype condensation, artifact round-trips, the
   cached warm path, stitch determinism across domain counts, DRC
   preservation, and the identity on fully abutted structures. *)

open Rsg_geom
open Rsg_layout
module H = Rsg_compact.Hcompact
module Rules = Rsg_compact.Rules
module Cgraph = Rsg_compact.Cgraph
module Bellman = Rsg_compact.Bellman
module Drc = Rsg_drc.Drc

let rules = Rules.default

(* A loose floorplan: two PLA blocks side by side with a huge gap and
   a y misalignment — the kind of input the stitch is for. *)
let pla_cell () =
  (Rsg_pla.Gen.generate
     (Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]))
    .Rsg_pla.Gen.cell

let chip_of ?(gap = 2000) cell =
  let protos = Flatten.prototypes cell in
  let bb =
    match Flatten.cell_bbox protos cell with
    | Some b -> b
    | None -> Alcotest.fail "empty cell"
  in
  let chip = Cell.create "chip" in
  ignore (Cell.add_instance chip ~at:(Vec.make 0 0) cell);
  ignore (Cell.add_instance chip ~at:(Vec.make (Box.width bb + gap) 17) cell);
  chip

let fingerprint cell =
  let protos = Flatten.prototypes cell in
  let f = Flatten.proto_flat protos (Flatten.protos_root protos) in
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (Array.to_list
             (Array.map
                (fun (l, b) ->
                  Printf.sprintf "%s:%d,%d,%d,%d" (Layer.name l) b.Box.xmin
                    b.Box.ymin b.Box.xmax b.Box.ymax)
                f.Flatten.flat_boxes))))

let test_identity_on_abutted () =
  (* a fully abutted builtin has no slack at any seam: hier compaction
     must be the identity on area and keep the structure DRC-clean *)
  let cell = pla_cell () in
  let r = H.hier ~domains:2 rules cell in
  Alcotest.(check int) "area unchanged" r.H.hr_stats.H.hs_area_before
    r.H.hr_stats.H.hs_area_after;
  Alcotest.(check int) "drc clean" 0
    (List.length (Drc.check_cell ~domains:1 r.H.hr_cell).Drc.r_violations)

let test_shrinks_loose_floorplan () =
  let chip = chip_of (pla_cell ()) in
  let before = fingerprint chip in
  let r = H.hier ~domains:2 rules chip in
  let s = r.H.hr_stats in
  Alcotest.(check bool) "area strictly shrinks" true
    (s.H.hs_area_after < s.H.hs_area_before);
  Alcotest.(check int) "output drc clean" 0
    (List.length (Drc.check_cell ~domains:1 r.H.hr_cell).Drc.r_violations);
  Alcotest.(check string) "input cell untouched" before (fingerprint chip);
  Alcotest.(check bool) "stitch emitted constraints" true
    (s.H.hs_stitch_constraints > 0)

let test_deterministic_across_domains () =
  let fp d = fingerprint (H.hier ~domains:d rules (chip_of (pla_cell ()))).H.hr_cell in
  let f1 = fp 1 in
  Alcotest.(check string) "domains 2 = domains 1" f1 (fp 2);
  Alcotest.(check string) "domains 4 = domains 1" f1 (fp 4)

let test_cached_replay () =
  (* the warm path must reuse every artifact and reproduce the cold
     output byte for byte *)
  let chip () = chip_of (pla_cell ()) in
  let cold = H.hier ~domains:2 rules (chip ()) in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (hex, p, _) -> Hashtbl.replace tbl hex p)
    cold.H.hr_artifacts;
  let warm = H.hier ~domains:2 ~cached:(Hashtbl.find_opt tbl) rules (chip ()) in
  Alcotest.(check int) "all prototypes reused" warm.H.hr_stats.H.hs_protos
    warm.H.hr_stats.H.hs_reused;
  Alcotest.(check int) "cold run reused none" 0 cold.H.hr_stats.H.hs_reused;
  Alcotest.(check string) "identical output" (fingerprint cold.H.hr_cell)
    (fingerprint warm.H.hr_cell);
  (* artifacts returned by the warm run carry the reused flag *)
  Alcotest.(check bool) "artifacts flagged reused" true
    (List.for_all (fun (_, _, reused) -> reused) warm.H.hr_artifacts)

let test_partial_cache_is_partial_reuse () =
  (* hand back only some artifacts: the run reuses exactly those and
     recondenses the rest, with identical output *)
  let chip () = chip_of (pla_cell ()) in
  let cold = H.hier ~domains:2 rules (chip ()) in
  let keep = ref true in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (hex, p, _) ->
      if !keep then Hashtbl.replace tbl hex p;
      keep := not !keep)
    cold.H.hr_artifacts;
  let warm = H.hier ~domains:2 ~cached:(Hashtbl.find_opt tbl) rules (chip ()) in
  Alcotest.(check int) "reused exactly the cached half"
    (Hashtbl.length tbl) warm.H.hr_stats.H.hs_reused;
  Alcotest.(check string) "identical output" (fingerprint cold.H.hr_cell)
    (fingerprint warm.H.hr_cell)

let test_cgraph_roundtrip () =
  (* the serialised constraint system solves to the same least
     solution as the live graph it came from *)
  let cell = pla_cell () in
  let r = H.hier ~domains:1 rules cell in
  Alcotest.(check bool) "has artifacts" true (r.H.hr_artifacts <> []);
  List.iter
    (fun (_, pa, _) ->
      List.iter
        (fun (cg : H.cgraph) ->
          let g = H.graph_of_cgraph cg in
          Alcotest.(check int) "variable count" cg.H.cg_nv (Cgraph.n_vars g);
          Alcotest.(check int) "constraint count"
            (Array.length cg.H.cg_cons)
            (Cgraph.n_constraints g);
          Array.iteri
            (fun v init ->
              Alcotest.(check int) "initial abscissa" init
                (Cgraph.init_value g v))
            cg.H.cg_inits;
          (* re-serialise: the round-trip is exact *)
          let cg2 =
            { H.cg_nv = Cgraph.n_vars g;
              cg_inits =
                Array.init (Cgraph.n_vars g) (Cgraph.init_value g);
              cg_cons = Array.of_list (Cgraph.constraints g) }
          in
          Alcotest.(check bool) "exact round-trip" true (cg = cg2);
          ignore (Bellman.solve g))
        [ pa.H.pa_cx; pa.H.pa_cy ])
    r.H.hr_artifacts

let test_pitch_bounds_solve () =
  (* wmin/hmin are the packed extents of the serialised systems *)
  let cell = pla_cell () in
  let r = H.hier ~domains:1 rules cell in
  List.iter
    (fun (_, pa, _) ->
      Alcotest.(check bool) "wmin positive" true (pa.H.pa_wmin >= 0);
      Alcotest.(check bool) "hmin positive" true (pa.H.pa_hmin >= 0);
      Alcotest.(check bool) "constraint count matches" true
        (H.pabs_constraints pa
        = Array.length pa.H.pa_cx.H.cg_cons
          + Array.length pa.H.pa_cy.H.cg_cons))
    r.H.hr_artifacts

let () =
  Alcotest.run "rsg_hcompact"
    [ ("hier",
       [ Alcotest.test_case "identity on abutted" `Quick
           test_identity_on_abutted;
         Alcotest.test_case "shrinks loose floorplan" `Quick
           test_shrinks_loose_floorplan;
         Alcotest.test_case "deterministic across domains" `Quick
           test_deterministic_across_domains ]);
      ("cache",
       [ Alcotest.test_case "warm replay" `Quick test_cached_replay;
         Alcotest.test_case "partial cache" `Quick
           test_partial_cache_is_partial_reuse ]);
      ("artifacts",
       [ Alcotest.test_case "cgraph round-trip" `Quick test_cgraph_roundtrip;
         Alcotest.test_case "pitch bounds" `Quick test_pitch_bounds_solve ])
    ]

(* Tests for the lib/search annealing engine: PRNG determinism, the
   zero-iteration == greedy-baseline property, fixed-seed
   bit-identity across domain counts, fold validity of every reached
   state, strict improvement on a greedy-suboptimal table, and warm
   candidate-cache replay. *)

open Rsg_pla
open Rsg_search
module H = Rsg_compact.Hcompact
module Rules = Rsg_compact.Rules

let rules = Rules.default

(* Greedy provably suboptimal: column rows are 0:{0} 1:{1} 2:{1}
   3:{0}.  Greedy accepts (0,1) first, which makes (2,3) cyclic — one
   pair.  (0,2) and (3,1) together are acyclic — two pairs, two
   columns fewer. *)
let suboptimal_tt () =
  Truth_table.of_strings [ ("1--1", "10"); ("-11-", "01") ]

let greedy_area tt =
  let t = Folding.generate tt in
  (H.hier ~domains:1 rules t.Folding.cell).H.hr_stats.H.hs_area_after

(* ------------------------------------------------------------------ *)

let test_rng () =
  let a = Anneal.Rng.make 42 and b = Anneal.Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Anneal.Rng.int a 1000)
      (Anneal.Rng.int b 1000)
  done;
  let c = Anneal.Rng.split a in
  ignore (Anneal.Rng.split b);
  let d = Anneal.Rng.make 43 in
  let xs rng = List.init 20 (fun _ -> Anneal.Rng.int rng 1_000_000) in
  Alcotest.(check bool) "split differs from other seed" false (xs c = xs d);
  List.iter
    (fun x ->
      Alcotest.(check bool) "int in range" true (x >= 0 && x < 1_000_000))
    (xs (Anneal.Rng.make 7));
  for _ = 1 to 100 do
    let f = Anneal.Rng.float (Anneal.Rng.split a) in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

(* small random truth tables for the properties *)
let gen_tt =
  let open QCheck.Gen in
  let lit = frequency [ (2, return 'T'); (2, return 'F'); (3, return 'X') ] in
  let* n = int_range 2 6 in
  let* m = int_range 1 2 in
  let* p = int_range 1 5 in
  let term _ =
    let* ls = array_repeat n lit in
    let* outs = array_repeat m bool in
    let* k = int_range 0 (m - 1) in
    outs.(k) <- true;
    return
      ( String.init n (fun i ->
            match ls.(i) with 'T' -> '1' | 'F' -> '0' | _ -> '-'),
        String.init m (fun k -> if outs.(k) then '1' else '0') )
  in
  let* rows = flatten_l (List.init p term) in
  return (Truth_table.of_strings rows)

let tt_arb = QCheck.make ~print:(fun tt ->
    String.concat "; "
      (List.map (fun (i, o) -> i ^ " " ^ o) (Truth_table.to_strings tt)))
    gen_tt

let prop_zero_iter_is_greedy =
  QCheck.Test.make ~count:25 ~name:"zero-iteration anneal == greedy plan"
    tt_arb (fun tt ->
      let st = Fold_opt.make ~rules tt in
      let r = Anneal.run ~domains:1 ~iters:0 ~seed:1 Fold_opt.problem st in
      Fold_opt.pairs r.Anneal.r_best
      = List.sort compare (Folding.plan tt).Folding.pairs
      && r.Anneal.r_cost = r.Anneal.r_initial_cost
      && r.Anneal.r_cost = greedy_area tt)

let prop_accepted_folds_valid =
  QCheck.Test.make ~count:15 ~name:"annealed fold acyclic and verified"
    tt_arb (fun tt ->
      let st = Fold_opt.make ~rules tt in
      let r =
        Anneal.run ~domains:1 ~chains:2 ~iters:12 ~seed:5 Fold_opt.problem st
      in
      let best = r.Anneal.r_best in
      Folding.acyclic tt (Fold_opt.pairs best)
      && Folding.verify (Fold_opt.generate best))

let test_domain_identity () =
  let tt = suboptimal_tt () in
  let run d =
    let st = Fold_opt.make ~rules tt in
    Anneal.run ~domains:d ~chains:3 ~iters:25 ~seed:11 Fold_opt.problem st
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check int) "cost 1=2" r1.Anneal.r_cost r2.Anneal.r_cost;
  Alcotest.(check int) "cost 1=4" r1.Anneal.r_cost r4.Anneal.r_cost;
  Alcotest.(check string) "digest 1=2"
    (Digest.to_hex r1.Anneal.r_digest)
    (Digest.to_hex r2.Anneal.r_digest);
  Alcotest.(check string) "digest 1=4"
    (Digest.to_hex r1.Anneal.r_digest)
    (Digest.to_hex r4.Anneal.r_digest);
  let cif r =
    Rsg_layout.Cif.to_string (Fold_opt.generate r.Anneal.r_best).Folding.cell
  in
  Alcotest.(check string) "cif 1=2" (cif r1) (cif r2);
  Alcotest.(check string) "cif 1=4" (cif r1) (cif r4);
  Alcotest.(check bool) "same eval set" true
    (List.sort compare r1.Anneal.r_evals
    = List.sort compare r2.Anneal.r_evals)

let test_strict_improvement () =
  let tt = suboptimal_tt () in
  let greedy = greedy_area tt in
  let st = Fold_opt.make ~rules tt in
  let r =
    Anneal.run ~domains:1 ~chains:3 ~iters:40 ~seed:3 Fold_opt.problem st
  in
  Alcotest.(check int) "greedy finds one pair" 1
    (List.length (Folding.plan tt).Folding.pairs);
  Alcotest.(check int) "anneal finds both pairs" 2
    (List.length (Fold_opt.pairs r.Anneal.r_best));
  Alcotest.(check bool)
    (Printf.sprintf "area %d < greedy %d" r.Anneal.r_cost greedy)
    true
    (r.Anneal.r_cost < greedy);
  Alcotest.(check bool) "fold still verifies" true
    (Folding.verify (Fold_opt.generate r.Anneal.r_best))

let test_warm_replay () =
  let tt = suboptimal_tt () in
  let go ?cached () =
    let st = Fold_opt.make ~rules tt in
    Anneal.run ?cached ~domains:1 ~chains:2 ~iters:20 ~seed:7
      Fold_opt.problem st
  in
  let cold = go () in
  Alcotest.(check bool) "cold run computed evals" true
    (cold.Anneal.r_stats.Anneal.st_computed > 0);
  let tbl = Hashtbl.create 64 in
  List.iter (fun (d, c) -> Hashtbl.replace tbl d c) cold.Anneal.r_evals;
  let warm = go ~cached:(Hashtbl.find_opt tbl) () in
  Alcotest.(check int) "warm run computes nothing" 0
    warm.Anneal.r_stats.Anneal.st_computed;
  Alcotest.(check bool) "warm run replays" true
    (warm.Anneal.r_stats.Anneal.st_cached > 0);
  Alcotest.(check int) "same best cost" cold.Anneal.r_cost warm.Anneal.r_cost;
  Alcotest.(check string) "same best digest"
    (Digest.to_hex cold.Anneal.r_digest)
    (Digest.to_hex warm.Anneal.r_digest)

(* ------------------------------------------------------------------ *)

let tall_block () =
  (Rsg_pla.Gen.generate
     (Truth_table.of_strings [ ("1-", "1"); ("-1", "1"); ("11", "1"); ("00", "1") ]))
    .Rsg_pla.Gen.cell

let test_place_improves_row () =
  let blocks = List.init 4 (fun _ -> tall_block ()) in
  let st = Place_opt.make ~rules blocks in
  let baseline =
    Anneal.run ~domains:1 ~iters:0 ~seed:1 Place_opt.problem st
  in
  let r =
    Anneal.run ~domains:1 ~chains:2 ~iters:60 ~seed:2 Place_opt.problem
      (Place_opt.make ~rules blocks)
  in
  Alcotest.(check bool)
    (Printf.sprintf "anneal %d <= row %d" r.Anneal.r_cost
       baseline.Anneal.r_cost)
    true
    (r.Anneal.r_cost <= baseline.Anneal.r_cost);
  (* the arrangement is realisable: hier still compacts it *)
  let cell = Place_opt.cell r.Anneal.r_best in
  let res = H.hier ~domains:1 rules cell in
  Alcotest.(check int) "realised cell scores the annealed cost"
    r.Anneal.r_cost res.H.hr_stats.H.hs_area_after

let test_place_domain_identity () =
  let blocks = List.init 3 (fun _ -> tall_block ()) in
  let run d =
    Anneal.run ~domains:d ~chains:3 ~iters:20 ~seed:9 Place_opt.problem
      (Place_opt.make ~rules blocks)
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check int) "cost 1=2" r1.Anneal.r_cost r2.Anneal.r_cost;
  Alcotest.(check int) "cost 1=4" r1.Anneal.r_cost r4.Anneal.r_cost;
  let cif r = Rsg_layout.Cif.to_string (Place_opt.cell r.Anneal.r_best) in
  Alcotest.(check string) "cif 1=2" (cif r1) (cif r2);
  Alcotest.(check string) "cif 1=4" (cif r1) (cif r4)

let () =
  Alcotest.run "search"
    [
      ( "anneal",
        [
          Alcotest.test_case "rng determinism" `Quick test_rng;
          QCheck_alcotest.to_alcotest prop_zero_iter_is_greedy;
          QCheck_alcotest.to_alcotest prop_accepted_folds_valid;
          Alcotest.test_case "fold: fixed seed identical at domains 1/2/4"
            `Quick test_domain_identity;
          Alcotest.test_case "fold: strict improvement over greedy" `Quick
            test_strict_improvement;
          Alcotest.test_case "fold: warm candidate-cache replay" `Quick
            test_warm_replay;
        ] );
      ( "place",
        [
          Alcotest.test_case "anneal never worse than row baseline" `Quick
            test_place_improves_row;
          Alcotest.test_case "place: fixed seed identical at domains 1/2/4"
            `Quick test_place_domain_identity;
        ] );
    ]

(* The rsg command line: layout generation from design + parameter +
   sample files (the Figure 1.1 flow), plus built-in generators and
   layout utilities.

     rsg generate -d mult.def -p mult.par -s sample.cif -o out.cif
     rsg multiplier --size 8 -o mult.cif
     rsg pla -t table.txt -o pla.cif
     rsg decoder -n 4 -o dec.cif
     rsg stats layout.cif
     rsg compact layout.cif -o smaller.cif --slack
     rsg drc layout.cif               # design-rule check (or: pla|ram|...)
     rsg erc layout.cif               # electrical rule check (same targets)
     rsg lint design.def -p file.par  # static analysis (or: mult|pla)
     rsg doctor                       # expansion diagnostics demo

   Generator commands accept --obs / --obs-json to record per-phase
   timers and counters (lib/obs) and dump them to stderr on exit,
   --drc to gate the run on a clean design-rule check of the result,
   --erc to gate on a clean electrical check of its extracted netlist,
   and (design-file-driven generators) --lint to gate on a clean
   static analysis of the design file before anything runs.
*)

open Cmdliner
open Rsg_geom
open Rsg_layout
open Rsg_core
module Obs = Rsg_obs.Obs

(* ---- observability flags ------------------------------------------- *)

let obs_term =
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Record per-phase wall-clock timers and counters (graph \
             expansion, constraint generation, Bellman-Ford, ...) and dump \
             a human-readable report to stderr on exit.")
  in
  let obs_json =
    Arg.(
      value & flag
      & info [ "obs-json" ] ~doc:"Like $(b,--obs) but dump JSON to stderr.")
  in
  Term.(const (fun a b -> (a, b)) $ obs $ obs_json)

let with_obs (text, json) f =
  if text || json then Obs.enable ();
  Fun.protect f ~finally:(fun () ->
      if json then prerr_endline (Obs.to_json ())
      else if text then Obs.dump ())

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A sample CIF holds leaf cells plus labelled assembly cells; every
   symbol that contains both instances and labels is extracted. *)
let sample_of_cif path =
  let r = Cif.read_file path in
  fst (Sample.of_db r.Cif.db)

let write_layout out cell =
  (* format by extension: .def gets the native text format, anything
     else CIF *)
  if Filename.check_suffix out ".def" then Def.write_file out cell
  else Cif.write_file out cell;
  Format.printf "wrote %s@." out

let print_stats cell =
  Format.printf "%a" Report.pp (Report.of_cell cell);
  let s = Flatten.stats cell in
  Format.printf "  flattened census:@.";
  List.iter (fun (n, k) -> Format.printf "    %-14s %6d@." n k) s.Flatten.by_cell

(* ---- design-rule gating -------------------------------------------- *)

let drc_flag =
  Arg.(
    value & flag
    & info [ "drc" ]
        ~doc:
          "Design-rule check the generated layout against the default lambda \
           deck; fail (exit 1) on violations.")

let domains_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for the parallel phases (DRC region merging and rule \
           checks, extraction scans).  Defaults to the RSG_DOMAINS \
           environment variable, else the machine's recommended domain \
           count.  Results are identical for every value; 1 runs fully \
           sequentially.")

(* gate a generator's output: clean passes silently with a one-line
   note, violations dump the report and abort before anything is
   written.  Takes already-flattened geometry so the warm cache path
   can gate the stored flat view without re-flattening. *)
let drc_gate_flat ?domains enabled flat =
  if enabled then begin
    let r = Rsg_drc.Drc.check_flat ?domains flat in
    if Rsg_drc.Drc.clean r then
      Format.printf "drc: clean (%d boxes, %d regions, deck %s)@."
        r.Rsg_drc.Drc.r_boxes r.Rsg_drc.Drc.r_regions r.Rsg_drc.Drc.r_deck
    else begin
      Format.eprintf "%a" Rsg_drc.Drc.pp_report r;
      exit 1
    end
  end

(* the hierarchical entry point flattens through the prototype cache:
   once per distinct celltype rather than once per instance *)
let drc_gate ?domains enabled cell =
  if enabled then
    drc_gate_flat ?domains enabled (Flatten.protos_flat (Flatten.prototypes cell))

(* ---- electrical rule gating ---------------------------------------- *)

module Erc = Rsg_erc.Erc

let erc_flag =
  Arg.(
    value & flag
    & info [ "erc" ]
        ~doc:
          "Electrically check the generated layout (supply shorts, floating \
           gates, undriven nets, dangling devices, fanout, rail \
           reachability) with the default configuration; fail (exit 1) on \
           ERC errors.  With --cache, per-prototype verdicts are stored and \
           replayed like DRC levels.")

(* ERC twin of [drc_gate_protos]: one verdict per distinct prototype,
   [cached] replaying verdicts stored by an earlier run.  Clean (no
   error-severity findings) passes with a one-line note; errors dump
   the report and abort. *)
let erc_gate_protos ?domains ~cached protos =
  let r = Erc.check_protos ?domains ~cached protos in
  if Erc.clean r then begin
    Format.printf
      "erc: clean (%d prototypes, %d replayed, %d nets, %d devices, %d \
       warnings)@."
      (List.length r.Erc.r_levels)
      r.Erc.r_cached r.Erc.r_nets r.Erc.r_devices
      (List.length (Rsg_lint.Diag.warnings (Erc.to_diags r)));
    r
  end
  else begin
    Format.eprintf "%a" Erc.pp_report r;
    exit 1
  end

let erc_config_digest =
  lazy (Erc.config_digest Erc.default_config Rsg_compact.Rules.default)

(* ---- static lint gating -------------------------------------------- *)

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Statically analyze the design file (scoping, arity, array shape) \
           before generating; fail (exit 1) on lint errors.")

(* gate a design-file run on a clean static analysis, mirroring
   drc_gate: clean passes with a one-line note, errors dump the
   report and abort before anything is generated *)
let lint_gate enabled ~source cfg text =
  if enabled then begin
    let r = Rsg_lint.Design_lint.check_string ~file:source cfg text in
    if Rsg_lint.Diag.clean r then
      Format.printf "lint: clean (%d forms, %d warnings)@."
        r.Rsg_lint.Diag.r_checked
        (List.length (Rsg_lint.Diag.warnings r))
    else begin
      Format.eprintf "%a" Rsg_lint.Diag.pp_report r;
      exit 1
    end
  end

let mult_lint_config ~size () =
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let params =
    Rsg_lang.Param.parse (Rsg_mult.Sample_lib.param_file ~xsize:size ~ysize:size)
  in
  Rsg_lint.Design_lint.config_of_params ~cells:(Db.names sample.Sample.db) params

let pla_lint_config ~ninputs ~noutputs ~nterms () =
  let sample, _ = Rsg_pla.Pla_cells.build () in
  let params =
    Rsg_lang.Param.parse
      (Rsg_pla.Pla_design_file.param_file ~ninputs ~noutputs ~nterms ~name:"pla")
  in
  let cfg =
    Rsg_lint.Design_lint.config_of_params ~cells:(Db.names sample.Sample.db)
      params
  in
  (* the encoding tables are host-installed globals (delayed binding) *)
  { cfg with
    Rsg_lint.Design_lint.globals =
      "lits" :: "outs" :: cfg.Rsg_lint.Design_lint.globals
  }

(* ---- layout store wiring ------------------------------------------- *)

module Store = Rsg_store.Store
module Codec = Rsg_store.Codec
module Batch = Rsg_store.Batch

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed layout cache.  The result is keyed by design \
           text + parameters + rule deck + scale + codec version; a verified \
           hit loads the stored hierarchy and flattened geometry and skips \
           parse/expand/flatten entirely, a corrupt entry is reported and \
           regenerated.  Manage with $(b,rsg cache).")

let save_db_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-db" ] ~docv:"FILE"
        ~doc:
          "Also write the result as a binary layout database (hierarchy + \
           flattened geometry, checksummed); $(b,rsg drc/stats/masks \
           --from-db) reread it without regenerating.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"N"
        ~doc:"Multiply every output coordinate by $(docv) (a positive int).")

let store_term =
  Term.(
    const (fun cache save_db scale -> (cache, save_db, scale))
    $ cache_arg $ save_db_arg $ scale_arg)

let from_db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "from-db" ] ~docv:"FILE"
        ~doc:
          "Read the layout from a binary database written by \
           $(b,--save-db) instead of a CIF file.")

let load_db path =
  match Codec.read_file path with
  | e -> e
  | exception Codec.Error err ->
    Format.eprintf "%s: %a@." path Codec.pp_error err;
    exit 1
  | exception Sys_error msg ->
    Format.eprintf "%s@." msg;
    exit 1

(* Hierarchical design-rule gate of the generator flow: each distinct
   prototype is checked once ({!Rsg_drc.Drc.check_protos}); [cached]
   replays levels computed by an earlier run when the subtree digest
   and deck digest both match.  Same pass/fail behaviour as
   [drc_gate_flat] — the hier-vs-flat agreement tests pin that — but
   incremental runs skip every clean prototype. *)
let drc_gate_protos ?domains ~cached protos =
  let r = Rsg_drc.Drc.check_protos ?domains ~cached protos in
  if Rsg_drc.Drc.hier_clean r then begin
    Format.printf
      "drc: clean (%d prototypes, %d replayed, %d boxes checked, deck %s)@."
      (List.length r.Rsg_drc.Drc.h_levels)
      r.Rsg_drc.Drc.h_cached r.Rsg_drc.Drc.h_boxes r.Rsg_drc.Drc.h_deck;
    r
  end
  else begin
    Format.eprintf "%a" Rsg_drc.Drc.pp_hier_report r;
    exit 1
  end

let proto_index table =
  let h = Hashtbl.create 64 in
  Array.iter
    (fun (p : Codec.proto) -> Hashtbl.replace h (Digest.to_hex p.Codec.p_hash) p)
    table;
  h

(* Run one generator through the store.

   Warm path: load the stored hierarchy + flat view; --drc replays the
   entry's own per-prototype levels, recomputing nothing.

   Cold path: generate, then harvest the {e previous} entry for this
   design ([stem] names the design independently of its content, so an
   edit still finds it): every prototype whose subtree digest is
   unchanged replays its stored DRC level and is marked reused in the
   new entry; only the dirty prototypes — the edited celltypes and
   their ancestors — are actually checked, fanned across the domain
   pool.  The installed entry carries the prototype table (digests,
   reused flags, per-deck levels) so the next edit harvests it in
   turn.  The flat view is lazy so a plain uncached run never pays for
   it. *)
let run_cached ?domains ?(post = fun (c : Cell.t) -> c)
    ~store:(cache, save_db, scale) ~stem ~design ~params ~label
    ~stats:want_stats ~drc ~erc ~out gen =
  if scale < 1 then begin
    Format.eprintf "--scale must be >= 1@.";
    exit 1
  end;
  let erc_digest = Lazy.force erc_config_digest in
  let deck =
    (if drc then Rsg_drc.Deck.to_string Rsg_drc.Deck.default else "")
    (* --erc changes what the entry must carry (verdicts) and what a
       hit must replay, so it keys separately, like the DRC deck *)
    ^ (if erc then "\x00erc:" ^ Digest.to_hex erc_digest else "")
  in
  let deck_digest = Rsg_drc.Deck.digest Rsg_drc.Deck.default in
  let key =
    Store.key ~deck ~scale:(string_of_int scale) ~design ~params ()
  in
  let st = Option.map Store.open_ cache in
  let cold store =
    let cell = gen () in
    let protos = Flatten.prototypes cell in
    let harvested =
      match store with
      | Some s -> (
        match Store.harvest s ~stem with
        | Some (k, table) when Array.length table > 0 ->
          Format.printf "cache: harvesting %s (%d prototypes)@."
            (Store.short k) (Array.length table);
          Some (proto_index table)
        | _ -> None)
      | None -> None
    in
    let old_proto hex =
      match harvested with None -> None | Some h -> Hashtbl.find_opt h hex
    in
    let hier =
      if drc then begin
        let cached hex =
          Option.bind (old_proto hex) (fun (p : Codec.proto) ->
              List.assoc_opt deck_digest p.Codec.p_reports)
        in
        Some (drc_gate_protos ?domains ~cached protos)
      end
      else None
    in
    let ehier =
      if erc then begin
        let cached hex =
          Option.bind (old_proto hex) (fun (p : Codec.proto) ->
              List.assoc_opt erc_digest p.Codec.p_ercs)
        in
        Some (erc_gate_protos ?domains ~cached protos)
      end
      else None
    in
    let cell, protos =
      if scale = 1 then (cell, protos)
      else begin
        let c = Scale.cell ~num:scale cell in
        (c, Flatten.prototypes c)
      end
    in
    let flat = lazy (Flatten.protos_flat protos) in
    (match store with
    | Some s ->
      (* scaling changes every digest, so reused flags and DRC reports
         (both computed pre-scale) only annotate scale-1 entries — the
         table itself always describes the stored geometry *)
      let reused hex = scale = 1 && old_proto hex <> None in
      let reports =
        match hier with
        | Some r when scale = 1 ->
          let by_hex =
            List.map
              (fun (l : Rsg_drc.Drc.level) ->
                ( l.Rsg_drc.Drc.l_hash,
                  { Rsg_drc.Drc.cl_violations = l.Rsg_drc.Drc.l_violations;
                    cl_contexts = l.Rsg_drc.Drc.l_contexts;
                    cl_distinct = l.Rsg_drc.Drc.l_distinct;
                    cl_boxes = l.Rsg_drc.Drc.l_boxes } ))
              r.Rsg_drc.Drc.h_levels
          in
          fun hex ->
            (match List.assoc_opt hex by_hex with
            | Some cl -> [ (deck_digest, cl) ]
            | None -> [])
        | _ -> fun _ -> []
      in
      let ercs =
        match ehier with
        | Some r when scale = 1 ->
          let by_hex =
            List.map
              (fun (l : Erc.level) -> (l.Erc.l_hash, l.Erc.l_verdict))
              r.Erc.r_levels
          in
          fun hex ->
            (match List.assoc_opt hex by_hex with
            | Some v -> [ (erc_digest, v) ]
            | None -> [])
        | _ -> fun _ -> []
      in
      let table = Codec.proto_table protos ~reused ~reports ~ercs in
      let n_reused =
        Array.fold_left
          (fun a (p : Codec.proto) -> if p.Codec.p_reused then a + 1 else a)
          0 table
      in
      Array.iter
        (fun (p : Codec.proto) ->
          Obs.count
            (if p.Codec.p_reused then "cache.proto.reused"
             else "cache.proto.fresh"))
        table;
      Store.save s key ~stem ~label ~flat:(Lazy.force flat) ~protos:table cell;
      Format.printf "cache: saved %s (%d prototypes, %d reused)@."
        (Store.short key) (Array.length table) n_reused
    | None -> ());
    (cell, flat)
  in
  let cell, flat =
    match st with
    | None -> cold None
    | Some s -> (
      match Store.find s key with
      | Store.Hit e ->
        Format.printf "cache: hit %s@." (Store.short key);
        let protos = lazy (Flatten.prototypes e.Codec.e_cell) in
        let flat =
          lazy
            (match Lazy.force e.Codec.e_flat with
            | Some f -> f
            | None -> Flatten.protos_flat (Lazy.force protos))
        in
        if drc then begin
          let h = proto_index e.Codec.e_protos in
          let cached hex =
            Option.bind (Hashtbl.find_opt h hex) (fun (p : Codec.proto) ->
                List.assoc_opt deck_digest p.Codec.p_reports)
          in
          ignore (drc_gate_protos ?domains ~cached (Lazy.force protos))
        end;
        if erc then begin
          let h = proto_index e.Codec.e_protos in
          let cached hex =
            Option.bind (Hashtbl.find_opt h hex) (fun (p : Codec.proto) ->
                List.assoc_opt erc_digest p.Codec.p_ercs)
          in
          ignore (erc_gate_protos ?domains ~cached (Lazy.force protos))
        end;
        (e.Codec.e_cell, flat)
      | Store.Miss ->
        Format.printf "cache: miss %s@." (Store.short key);
        cold (Some s)
      | Store.Corrupt err ->
        Format.printf "cache: corrupt entry (%a), regenerating@."
          Codec.pp_error err;
        cold (Some s))
  in
  if want_stats then print_stats cell;
  (match save_db with
  | Some path ->
    Codec.write_file path (Codec.encode ~flat:(Lazy.force flat) ~label cell);
    Format.printf "wrote %s@." path
  | None -> ());
  (* [post] transforms only the written layout (e.g. generate
     --compact); the cache and --save-db keep the generator's
     output so harvesting stays keyed on generated geometry *)
  write_layout out (post cell)

(* ---- generate ------------------------------------------------------ *)

let generate design params sample_path out stats lint drc erc domains store
    compact obs =
  with_obs obs @@ fun () ->
  let design_text = read_file design in
  let params_text = read_file params in
  let sample_text = read_file sample_path in
  let gen () =
    let sample = fst (Sample.of_db (Cif.of_string sample_text).Cif.db) in
    let param_tbl = Rsg_lang.Param.parse params_text in
    lint_gate lint ~source:design
      (Rsg_lint.Design_lint.config_of_params
         ~cells:(Db.names sample.Sample.db) param_tbl)
      design_text;
    let st = Rsg_lang.Interp.of_sample ~file:design sample in
    Rsg_lang.Interp.load_params st param_tbl;
    (try ignore (Rsg_lang.Interp.run_string st design_text) with
    | Rsg_lang.Interp.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      exit 1
    | Rsg_lang.Parser.Syntax_error msg ->
      Format.eprintf "syntax error: %s@." msg;
      exit 1);
    match Rsg_lang.Interp.last_created st with
    | None ->
      Format.eprintf "design file created no cell@.";
      exit 1
    | Some cell -> cell
  in
  let post c =
    if not compact then c
    else
      match Rsg_compact.Hcompact.hier ?domains Rsg_compact.Rules.default c with
      | r ->
        Format.printf "hier: area %d -> %d (%d prototypes)@."
          r.Rsg_compact.Hcompact.hr_stats.Rsg_compact.Hcompact.hs_area_before
          r.Rsg_compact.Hcompact.hr_stats.Rsg_compact.Hcompact.hs_area_after
          r.Rsg_compact.Hcompact.hr_stats.Rsg_compact.Hcompact.hs_protos;
        r.Rsg_compact.Hcompact.hr_cell
      | exception Rsg_compact.Bellman.Infeasible cycle ->
        Format.eprintf "compaction infeasible: %a@."
          Rsg_compact.Bellman.pp_witness cycle;
        exit 1
  in
  run_cached ?domains ~post ~store
    (* the stem is the design's identity (its path), not its content:
       an edited design misses the key but still harvests the previous
       entry through the stem's .latest pointer *)
    ~stem:("generate:" ^ design)
    (* the sample shapes the geometry just as much as the design file,
       so both belong in the content key *)
    ~design:(design_text ^ "\x00sample\x00" ^ sample_text)
    ~params:params_text
    ~label:("generate " ^ Filename.basename design)
    ~stats ~drc ~erc ~out gen

let design_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "design" ] ~docv:"FILE" ~doc:"Design file (procedural).")

let params_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "p"; "params" ] ~docv:"FILE" ~doc:"Parameter file.")

let sample_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "sample" ] ~docv:"FILE"
        ~doc:"Sample layout (CIF with labelled assemblies).")

let out_arg default =
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CIF.")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print layout statistics.")

let generate_compact_flag =
  Arg.(
    value & flag
    & info [ "compact" ]
        ~doc:
          "Hierarchically compact the generated layout (see $(b,rsg compact \
           --hier)) before writing the output CIF.  The cache and --save-db \
           keep the uncompacted generator output.")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a layout from design/parameter/sample files")
    Term.(
      const generate $ design_arg $ params_arg $ sample_arg $ out_arg "out.cif"
      $ stats_flag $ lint_flag $ drc_flag $ erc_flag $ domains_term
      $ store_term $ generate_compact_flag $ obs_term)

(* ---- multiplier ---------------------------------------------------- *)

let multiplier size out stats lint drc erc domains store obs =
  with_obs obs @@ fun () ->
  let gen () =
    lint_gate lint ~source:"mult.def(builtin)" (mult_lint_config ~size ())
      Rsg_mult.Design_file.text;
    (Rsg_mult.Layout_gen.generate ~xsize:size ~ysize:size ())
      .Rsg_mult.Layout_gen.whole
  in
  run_cached ?domains ~store ~stem:"multiplier"
    ~design:("builtin:multiplier\n" ^ Rsg_mult.Design_file.text)
    ~params:(Rsg_mult.Sample_lib.param_file ~xsize:size ~ysize:size)
    ~label:(Printf.sprintf "multiplier %dx%d" size size)
    ~stats ~drc ~erc ~out gen

let size_arg =
  Arg.(value & opt int 8 & info [ "size" ] ~docv:"N" ~doc:"Multiplier bits.")

let multiplier_cmd =
  Cmd.v
    (Cmd.info "multiplier" ~doc:"Generate a pipelined array multiplier")
    Term.(
      const multiplier $ size_arg $ out_arg "mult.cif" $ stats_flag $ lint_flag
      $ drc_flag $ erc_flag $ domains_term $ store_term $ obs_term)

(* ---- search (annealed placement / folding) ------------------------- *)

module Anneal = Rsg_search.Anneal

(* Candidate-evaluation store wiring shared by `rsg place` and
   `pla --fold-opt`: previously scored candidates are harvested from
   the entry's root prototype record (codec v5 [p_places], keyed
   candidate digest x rule-deck digest), fed to the annealer as its
   warm path, then merged with the run's fresh evaluations and
   re-saved.  The key deliberately excludes seed/iters/chains, so a
   re-run with a different budget still replays every revisited
   state.  Chatter goes to stderr to keep --json stdout pure. *)
let run_search ?domains ~cache ~stem ~label ~design ~rules ~seed ~iters
    ~chains ~strategy problem init base_cell =
  let rules_digest = Rsg_compact.Rules.digest rules in
  let iters, chains =
    match strategy with `Greedy -> (0, 1) | `Anneal -> (iters, chains)
  in
  let st = Option.map Store.open_ cache in
  let key =
    Store.key ~deck:(Digest.to_hex rules_digest) ~design ~params:"place-evals"
      ()
  in
  let prior = Hashtbl.create 256 in
  (match st with
  | Some s -> (
    match Store.find s key with
    | Store.Hit e ->
      Array.iter
        (fun (p : Codec.proto) ->
          List.iter (fun (k, a) -> Hashtbl.replace prior k a) p.Codec.p_places)
        e.Codec.e_protos;
      Format.eprintf "cache: %d candidate evaluations harvested@."
        (Hashtbl.length prior)
    | Store.Miss | Store.Corrupt _ -> ())
  | None -> ());
  let cached d = Hashtbl.find_opt prior (Digest.string (d ^ rules_digest)) in
  let r = Anneal.run ?domains ~cached ~chains ~iters ~seed problem init in
  let s = r.Anneal.r_stats in
  Format.eprintf
    "search: %s seed=%d chains=%d iters=%d area %d -> %d (computed %d, \
     cached %d)@."
    (match strategy with `Greedy -> "greedy" | `Anneal -> "anneal")
    seed s.Anneal.st_chains s.Anneal.st_iters r.Anneal.r_initial_cost
    r.Anneal.r_cost s.Anneal.st_computed s.Anneal.st_cached;
  (match st with
  | Some store ->
    List.iter
      (fun (d, c) ->
        Hashtbl.replace prior (Digest.string (d ^ rules_digest)) c)
      r.Anneal.r_evals;
    let protos = Flatten.prototypes base_cell in
    let root_hex = Flatten.subtree_hex protos (Flatten.protos_root protos) in
    let evals =
      List.sort compare (Hashtbl.fold (fun k a acc -> (k, a) :: acc) prior [])
    in
    let table =
      Codec.proto_table protos ~places:(fun hex ->
          if hex = root_hex then evals else [])
    in
    Store.save store key ~stem ~label ~protos:table base_cell;
    Format.eprintf "cache: saved %s (%d candidate evaluations)@."
      (Store.short key) (List.length evals)
  | None -> ());
  r

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Annealing PRNG seed.  A fixed seed gives a bit-identical \
           result at any --domains value.")

let iters_arg =
  Arg.(
    value & opt int 200
    & info [ "iters" ] ~docv:"N" ~doc:"Annealing iterations per chain.")

let chains_arg =
  Arg.(
    value & opt int 4
    & info [ "chains" ] ~docv:"N"
        ~doc:
          "Independent annealing chains, fanned across the domain pool \
           and merged best-of-N in chain order.")

let strategy_arg =
  Arg.(
    value
    & opt (enum [ ("greedy", `Greedy); ("anneal", `Anneal) ]) `Anneal
    & info [ "strategy" ] ~docv:"greedy|anneal"
        ~doc:
          "greedy: the fixed heuristic baseline (zero search \
           iterations).  anneal: simulated annealing scored by \
           compacted area.")

let search_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-address candidate evaluations in the layout store \
           (codec v5 place evals, keyed candidate digest x rule deck): \
           revisited states and warm re-runs replay instead of \
           re-solving.")

(* ---- pla ----------------------------------------------------------- *)

let pla table out stats fold fold_opt seed iters chains strategy lint drc erc
    domains store obs =
  with_obs obs @@ fun () ->
  let table_text = read_file table in
  let rows =
    table_text |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' (String.trim line) with
           | [ i; o ] when i <> "" -> Some (i, o)
           | _ -> None)
  in
  match Rsg_pla.Truth_table.of_strings rows with
  | exception Rsg_pla.Truth_table.Malformed msg ->
    Format.eprintf "bad truth table: %s@." msg;
    exit 1
  | tt ->
    let gen () =
      lint_gate lint ~source:"pla.def(builtin)"
        (pla_lint_config ~ninputs:tt.Rsg_pla.Truth_table.n_inputs
           ~noutputs:tt.Rsg_pla.Truth_table.n_outputs
           ~nterms:(List.length tt.Rsg_pla.Truth_table.terms)
           ())
        Rsg_pla.Pla_design_file.text;
      if fold_opt then begin
        let rules = Rsg_compact.Rules.default in
        let st0 = Rsg_search.Fold_opt.make ~rules tt in
        let base = Rsg_pla.Folding.generate tt in
        let r =
          run_search ?domains
            ~cache:(let c, _, _ = store in c)
            ~stem:("place-evals:pla:" ^ table)
            ~label:("fold-opt evals " ^ Filename.basename table)
            ~design:("fold-opt:" ^ Digest.to_hex (Digest.string table_text))
            ~rules ~seed ~iters ~chains ~strategy Rsg_search.Fold_opt.problem
            st0 base.Rsg_pla.Folding.cell
        in
        let g = Rsg_search.Fold_opt.generate r.Anneal.r_best in
        if not (Rsg_pla.Folding.verify g) then begin
          Format.eprintf "internal error: folded extraction mismatch@.";
          exit 1
        end;
        Format.printf "fold-opt: %d inputs into %d slots, area %d -> %d@."
          tt.Rsg_pla.Truth_table.n_inputs
          (Rsg_pla.Folding.n_slots g.Rsg_pla.Folding.fold)
          r.Anneal.r_initial_cost r.Anneal.r_cost;
        g.Rsg_pla.Folding.cell
      end
      else if fold then begin
        let g = Rsg_pla.Folding.generate tt in
        if not (Rsg_pla.Folding.verify g) then begin
          Format.eprintf "internal error: folded extraction mismatch@.";
          exit 1
        end;
        Format.printf "folded %d inputs into %d slots@."
          tt.Rsg_pla.Truth_table.n_inputs
          (Rsg_pla.Folding.n_slots g.Rsg_pla.Folding.fold);
        g.Rsg_pla.Folding.cell
      end
      else begin
        let g = Rsg_pla.Gen.generate tt in
        if not (Rsg_pla.Gen.verify g) then begin
          Format.eprintf "internal error: extraction mismatch@.";
          exit 1
        end;
        g.Rsg_pla.Gen.cell
      end
    in
    let variant =
      if fold_opt then
        Printf.sprintf "+fold-opt:%s:%d:%d:%d"
          (match strategy with `Greedy -> "greedy" | `Anneal -> "anneal")
          seed iters chains
      else if fold then "+fold"
      else ""
    in
    run_cached ?domains ~store
      ~stem:(Printf.sprintf "pla:%s%s" table variant)
      ~design:("builtin:pla\n" ^ Rsg_pla.Pla_design_file.text)
      ~params:(Printf.sprintf "fold=%b%s\n%s" fold variant table_text)
      ~label:
        (Printf.sprintf "pla %dx%d%s" tt.Rsg_pla.Truth_table.n_inputs
           tt.Rsg_pla.Truth_table.n_outputs
           (if fold_opt then " fold-opt" else if fold then " folded" else ""))
      ~stats ~drc ~erc ~out gen

let table_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "t"; "table" ] ~docv:"FILE"
        ~doc:"Truth table: one 'inputs outputs' row per line (1/0/-).")

let fold_flag =
  Arg.(value & flag & info [ "fold" ] ~doc:"Fold disjoint input columns.")

let fold_opt_flag =
  Arg.(
    value & flag
    & info [ "fold-opt" ]
        ~doc:
          "Search for a better column folding by simulated annealing \
           (implies folding; see $(b,--strategy), $(b,--seed), \
           $(b,--iters), $(b,--chains)).")

let pla_cmd =
  Cmd.v
    (Cmd.info "pla" ~doc:"Generate a PLA from a truth table")
    Term.(
      const pla $ table_arg $ out_arg "pla.cif" $ stats_flag $ fold_flag
      $ fold_opt_flag $ seed_arg $ iters_arg $ chains_arg $ strategy_arg
      $ lint_flag $ drc_flag $ erc_flag $ domains_term $ store_term $ obs_term)

(* ---- rom ----------------------------------------------------------- *)

let rom data_path word_bits out stats drc erc domains store obs =
  with_obs obs @@ fun () ->
  let data_text = read_file data_path in
  let words =
    data_text |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let s = String.trim line in
           if s = "" then None
           else
             match int_of_string_opt s with
             | Some v -> Some v
             | None ->
               Format.eprintf "bad word %S@." s;
               exit 1)
    |> Array.of_list
  in
  let gen () =
    match Rsg_pla.Rom.generate ~word_bits words with
    | exception Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit 1
    | r ->
      if not (Rsg_pla.Rom.verify r) then begin
        Format.eprintf "internal error: ROM readback mismatch@.";
        exit 1
      end;
      r.Rsg_pla.Rom.pla.Rsg_pla.Gen.cell
  in
  run_cached ?domains ~store ~stem:("rom:" ^ data_path) ~design:"builtin:rom"
    ~params:(Printf.sprintf "word_bits=%d\n%s" word_bits data_text)
    ~label:(Printf.sprintf "rom %d words x %d bits" (Array.length words) word_bits)
    ~stats ~drc ~erc ~out gen

let rom_cmd =
  Cmd.v
    (Cmd.info "rom" ~doc:"Generate a ROM from a list of words")
    Term.(
      const rom
      $ Arg.(
          required
          & opt (some file) None
          & info [ "data" ] ~docv:"FILE"
              ~doc:"One integer word per line; power-of-two count.")
      $ Arg.(value & opt int 8 & info [ "word-bits" ] ~docv:"N" ~doc:"Word width.")
      $ out_arg "rom.cif" $ stats_flag $ drc_flag $ erc_flag $ domains_term
      $ store_term $ obs_term)

(* ---- decoder ------------------------------------------------------- *)

let decoder n out stats drc erc domains store obs =
  with_obs obs @@ fun () ->
  let gen () = (Rsg_pla.Gen.generate_decoder n).Rsg_pla.Gen.cell in
  run_cached ?domains ~store ~stem:"decoder" ~design:"builtin:decoder"
    ~params:(Printf.sprintf "n=%d" n)
    ~label:(Printf.sprintf "decoder %d" n)
    ~stats ~drc ~erc ~out gen

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Decoder input bits.")

let decoder_cmd =
  Cmd.v
    (Cmd.info "decoder" ~doc:"Generate an n-to-2^n decoder")
    Term.(
      const decoder $ n_arg $ out_arg "decoder.cif" $ stats_flag $ drc_flag
      $ erc_flag $ domains_term $ store_term $ obs_term)

(* ---- sim ----------------------------------------------------------- *)

let sim size beta a b =
  let t =
    Rsg_mult.Multiplier.build
      ?beta:(if beta = 0 then None else Some beta)
      ~m:size ~n:size ()
  in
  match Rsg_mult.Multiplier.multiply t a b with
  | exception Invalid_argument msg ->
    Format.eprintf "%s@." msg;
    exit 1
  | p ->
    let s = Rsg_mult.Multiplier.stats t in
    Format.printf "%d * %d = %d@." a b p;
    Format.printf
      "(%dx%d %s multiplier: %d adder cells, %d registers, latency %d)@."
      size size
      (if beta = 0 then "combinational" else Printf.sprintf "beta=%d" beta)
      s.Rsg_mult.Multiplier.adder_cells s.Rsg_mult.Multiplier.registers
      s.Rsg_mult.Multiplier.latency_cycles;
    if p <> a * b then begin
      Format.eprintf "MISMATCH: expected %d@." (a * b);
      exit 1
    end

let sim_cmd =
  Cmd.v
    (Cmd.info "sim" ~doc:"Multiply through the cycle-accurate array model")
    Term.(
      const sim $ size_arg
      $ Arg.(
          value & opt int 0
          & info [ "beta" ] ~docv:"B"
              ~doc:"Pipelining degree (0 = combinational).")
      $ Arg.(required & pos 0 (some int) None & info [] ~docv:"A")
      $ Arg.(required & pos 1 (some int) None & info [] ~docv:"B"))

(* ---- stats --------------------------------------------------------- *)

let top_cell_of_cif path =
  let r = Cif.read_file path in
  (* the top is either the explicit top-level call or the symbol no
     other symbol instantiates *)
  match r.Cif.top with
  | Some top -> (
    match Cell.instances top with
    | [ i ] -> i.Cell.def
    | _ -> top)
  | None -> (
    let called = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (fun (i : Cell.instance) ->
            Hashtbl.replace called i.Cell.def.Cell.cname ())
          (Cell.instances c))
      (Db.cells r.Cif.db);
    match
      List.filter (fun c -> not (Hashtbl.mem called c.Cell.cname)) (Db.cells r.Cif.db)
    with
    | [ c ] -> c
    | _ -> failwith "cannot determine the top cell")

(* a layout utility's input: positional CIF or --from-db database *)
let utility_cell what path from_db =
  match (path, from_db) with
  | Some p, None -> top_cell_of_cif p
  | None, Some db -> (load_db db).Codec.e_cell
  | Some _, Some _ ->
    Format.eprintf "%s: give either a CIF file or --from-db, not both@." what;
    exit 1
  | None, None ->
    Format.eprintf "%s: need a CIF file or --from-db@." what;
    exit 1

let stats_cmd =
  let run path from_db = print_stats (utility_cell "stats" path from_db) in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print statistics for a CIF layout")
    Term.(
      const run
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
      $ from_db_arg)

(* ---- masks --------------------------------------------------------- *)

let masks path from_db out =
  let cell = utility_cell "masks" path from_db in
  let expanded =
    Rsg_compact.Expand_contact.expand_cell Rsg_compact.Rules.default cell
  in
  Format.printf "expanded synthetic contacts: %d boxes -> %d boxes@."
    (Flatten.stats cell).Flatten.n_boxes
    (List.length (Cell.boxes expanded));
  write_layout out expanded

let masks_cmd =
  Cmd.v
    (Cmd.info "masks"
       ~doc:"Expand synthetic contact layers to lithographic masks")
    Term.(
      const masks
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
      $ from_db_arg $ out_arg "masks.cif")

(* ---- compact ------------------------------------------------------- *)

module Hcompact = Rsg_compact.Hcompact

(* Hierarchical compaction with the per-prototype artifact cache: a
   previous entry under the same stem is harvested and its condensed
   constraint graphs (matching this rule deck's digest) replayed, so
   only prototypes whose subtree digest changed are re-generated; the
   run's own artifacts are saved back for the next edit. *)
let hier_compact ?domains ~cache ~slack ~source cell =
  let rules = Rsg_compact.Rules.default in
  let rules_digest = Rsg_compact.Rules.digest rules in
  let stem = "compact:" ^ source in
  let st = Option.map Store.open_ cache in
  let cached =
    match st with
    | Some s -> (
      match Store.harvest s ~stem with
      | Some (k, table) when Array.length table > 0 ->
        Format.printf "cache: harvesting %s (%d prototypes)@." (Store.short k)
          (Array.length table);
        let h = proto_index table in
        fun hex ->
          Option.bind (Hashtbl.find_opt h hex) (fun (p : Codec.proto) ->
              List.assoc_opt rules_digest p.Codec.p_compacts)
      | _ -> fun _ -> None)
    | None -> fun _ -> None
  in
  let r = Hcompact.hier ?domains ~distribute_slack:slack ~cached rules cell in
  let s = r.Hcompact.hr_stats in
  Format.printf
    "hier: %d prototypes (%d reused), %d internal + %d stitch constraints@."
    s.Hcompact.hs_protos s.Hcompact.hs_reused s.Hcompact.hs_internal_constraints
    s.Hcompact.hs_stitch_constraints;
  Format.printf "hier: area %d -> %d (%d elements, %d clusters, %d rounds)@."
    s.Hcompact.hs_area_before s.Hcompact.hs_area_after s.Hcompact.hs_elements
    s.Hcompact.hs_clusters s.Hcompact.hs_rounds;
  (match st with
  | Some store ->
    let by_hex = Hashtbl.create 32 in
    List.iter
      (fun (hex, pa, reused) -> Hashtbl.replace by_hex hex (pa, reused))
      r.Hcompact.hr_artifacts;
    let protos = Flatten.prototypes cell in
    (* the key is content-addressed on the input geometry (root
       subtree digest), not the file path — the path is the stem *)
    let root_hex = Flatten.subtree_hex protos (Flatten.protos_root protos) in
    let table =
      Codec.proto_table protos
        ~reused:(fun hex ->
          match Hashtbl.find_opt by_hex hex with
          | Some (_, reused) -> reused
          | None -> false)
        ~compacts:(fun hex ->
          match Hashtbl.find_opt by_hex hex with
          | Some (pa, _) -> [ (rules_digest, pa) ]
          | None -> [])
    in
    let key =
      Store.key ~deck:(Digest.to_hex rules_digest) ~design:root_hex
        ~params:"hier-compact" ()
    in
    Store.save store key ~stem
      ~label:("compact " ^ Filename.basename source)
      ~protos:table cell;
    Format.printf "cache: saved %s (%d prototypes)@." (Store.short key)
      (Array.length table)
  | None -> ());
  r

let compact path from_db out slack hier cache domains drc obs =
  with_obs obs @@ fun () ->
  let cell = utility_cell "compact" path from_db in
  let source =
    match (path, from_db) with
    | Some p, _ | None, Some p -> p
    | None, None -> "-"
  in
  match
    if hier then
      (hier_compact ?domains ~cache ~slack ~source cell).Hcompact.hr_cell
    else begin
      let compacted, r =
        Rsg_compact.Compactor.compact_cell ~distribute_slack:slack
          Rsg_compact.Rules.default cell
      in
      Format.printf "width %d -> %d (%d constraints, %d passes)@."
        r.Rsg_compact.Compactor.width_before
        r.Rsg_compact.Compactor.width_after
        r.Rsg_compact.Compactor.n_constraints r.Rsg_compact.Compactor.passes;
      compacted
    end
  with
  | compacted ->
    drc_gate ?domains drc compacted;
    write_layout out compacted
  | exception Rsg_compact.Bellman.Infeasible cycle ->
    Format.eprintf "compaction infeasible: %a@." Rsg_compact.Bellman.pp_witness
      cycle;
    exit 1

let slack_flag =
  Arg.(value & flag & info [ "slack" ] ~doc:"Distribute slack after packing.")

let hier_flag =
  Arg.(
    value & flag
    & info [ "hier" ]
        ~doc:
          "Whole-structure hierarchical compaction: condense each distinct \
           prototype's constraint graphs once (in parallel across the domain \
           pool), then stitch the instance abstractions with inter-instance \
           spacing constraints.  Bit-identical at every --domains value.")

let compact_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "With --hier: persist each prototype's condensed constraint graphs \
           keyed by subtree hash + rule deck, and replay artifacts harvested \
           from the previous run of the same input, so an edit recompacts \
           only the dirty prototypes.")

let compact_cmd =
  Cmd.v
    (Cmd.info "compact" ~doc:"Constraint-graph compaction of a CIF layout")
    Term.(
      const compact
      $ Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
      $ from_db_arg $ out_arg "compacted.cif" $ slack_flag $ hier_flag
      $ compact_cache_arg $ domains_term $ drc_flag $ obs_term)

(* ---- drc ----------------------------------------------------------- *)

(* The target is either a CIF file or a builtin generator name, so the
   checker can be exercised without a layout at hand. *)
let drc_target = function
  | "pla" ->
    let tt =
      Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]
    in
    (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell
  | "ram" -> (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell
  | "multiplier" ->
    (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ()).Rsg_mult.Layout_gen.whole
  | "decoder" -> (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell
  | path when Sys.file_exists path -> top_cell_of_cif path
  | other ->
    Format.eprintf
      "%s is neither a file nor a builtin (pla, ram, multiplier, decoder)@."
      other;
    exit 1

let drc target from_db rules json max_shown self_check compacted domains obs =
  with_obs obs @@ fun () ->
  let deck =
    match rules with
    | None -> Rsg_drc.Deck.default
    | Some path -> (
      try Rsg_drc.Deck.read_file path
      with Rsg_drc.Deck.Parse_error (line, msg) ->
        Format.eprintf "%s:%d: %s@." path line msg;
        exit 1)
  in
  (* the stored flat view lets a --from-db check skip flattening too,
     unless compaction rewrites the geometry first *)
  let cell, stored_flat =
    match (target, from_db) with
    | Some t, None -> (drc_target t, None)
    | None, Some db ->
      let e = load_db db in
      (e.Codec.e_cell, Lazy.force e.Codec.e_flat)
    | Some _, Some _ ->
      Format.eprintf "drc: give either a target or --from-db, not both@.";
      exit 1
    | None, None ->
      Format.eprintf "drc: need a target or --from-db@.";
      exit 1
  in
  let cell, stored_flat =
    if compacted then
      ( fst (Rsg_compact.Compactor.compact_cell Rsg_compact.Rules.default cell),
        None )
    else (cell, stored_flat)
  in
  if self_check then
    match Rsg_drc.Drc.self_check_cell ~deck ?domains cell with
    | Ok sc -> Format.printf "%a@." Rsg_drc.Drc.pp_self_check sc
    | Error msg ->
      Format.eprintf "self-check failed: %s@." msg;
      exit 1
  else begin
    let flat =
      match stored_flat with
      | Some f -> f
      | None -> Flatten.protos_flat (Flatten.prototypes cell)
    in
    let r = Rsg_drc.Drc.check_flat ~deck ?domains flat in
    if json then print_endline (Rsg_drc.Drc.report_to_json r)
    else begin
      let total = List.length r.Rsg_drc.Drc.r_violations in
      let shown =
        { r with
          Rsg_drc.Drc.r_violations =
            List.filteri (fun i _ -> i < max_shown) r.Rsg_drc.Drc.r_violations
        }
      in
      Format.printf "%a" Rsg_drc.Drc.pp_report shown;
      if total > max_shown then
        Format.printf "  ... and %d more (raise --max)@." (total - max_shown)
    end;
    if not (Rsg_drc.Drc.clean r) then exit 1
  end

let drc_cmd =
  Cmd.v
    (Cmd.info "drc"
       ~doc:
         "Design-rule check a layout: merged-region minimum width, \
          facing-edge spacing, contact enclosure.  The target is a CIF file \
          or a builtin generator (pla, ram, multiplier, decoder).  Exits 1 \
          on violations.")
    Term.(
      const drc
      $ Arg.(
          value
          & pos 0 (some string) None
          & info [] ~docv:"FILE|BUILTIN"
              ~doc:"CIF layout, or builtin: pla, ram, multiplier, decoder.")
      $ from_db_arg
      $ Arg.(
          value
          & opt (some file) None
          & info [ "rules" ] ~docv:"FILE"
              ~doc:
                "Rule deck in the DSL (width/spacing/enclosure/overlap lines); \
                 default is the builtin nmos-lambda deck.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
      $ Arg.(
          value & opt int 20
          & info [ "max" ] ~docv:"N" ~doc:"Print at most $(docv) violations.")
      $ Arg.(
          value & flag
          & info [ "self-check" ]
              ~doc:
                "Mutation self-check: narrow one box to just below its width \
                 rule and verify the checker reports exactly that defect.")
      $ Arg.(
          value & flag
          & info [ "compacted" ] ~doc:"Check the layout after x compaction.")
      $ domains_term $ obs_term)

(* ---- place --------------------------------------------------------- *)

(* Annealed macro arrangement: N copies of the target block on the
   interface grid, scored by whole-structure compacted area.  The
   greedy baseline (zero iterations) is the fixed one-row floorplan
   every chip generator uses today, so --strategy greedy reproduces
   the status quo and anneal can only match or beat it. *)
let place target blocks out stats seed iters chains strategy cache json domains
    obs =
  with_obs obs @@ fun () ->
  if blocks < 1 then begin
    Format.eprintf "place: --blocks must be >= 1@.";
    exit 1
  end;
  let block = drc_target target in
  let rules = Rsg_compact.Rules.default in
  let st0 =
    Rsg_search.Place_opt.make ~rules (List.init blocks (fun _ -> block))
  in
  let base_cell = Rsg_search.Place_opt.cell st0 in
  let bprotos = Flatten.prototypes block in
  let block_hex = Flatten.subtree_hex bprotos (Flatten.protos_root bprotos) in
  let r =
    run_search ?domains ~cache
      ~stem:(Printf.sprintf "place-evals:%s:%d" (Filename.basename target) blocks)
      ~label:(Printf.sprintf "place evals %s x%d" (Filename.basename target) blocks)
      ~design:(Printf.sprintf "place:%s:%d" block_hex blocks)
      ~rules ~seed ~iters ~chains ~strategy Rsg_search.Place_opt.problem st0
      base_cell
  in
  let best = Rsg_search.Place_opt.cell r.Anneal.r_best in
  match Hcompact.hier ?domains rules best with
  | exception Rsg_compact.Bellman.Infeasible cycle ->
    Format.eprintf "compaction infeasible: %a@." Rsg_compact.Bellman.pp_witness
      cycle;
    exit 1
  | hr ->
    let s = r.Anneal.r_stats in
    if json then
      Format.printf
        "{\"target\": \"%s\", \"blocks\": %d, \"strategy\": \"%s\", \
         \"seed\": %d, \"iters\": %d, \"chains\": %d, \
         \"initial_area\": %d, \"best_area\": %d, \"best\": \"%s\", \
         \"computed\": %d, \"cached\": %d}@."
        (String.escaped target) blocks
        (match strategy with `Greedy -> "greedy" | `Anneal -> "anneal")
        seed s.Anneal.st_iters s.Anneal.st_chains r.Anneal.r_initial_cost
        r.Anneal.r_cost
        (Digest.to_hex r.Anneal.r_digest)
        s.Anneal.st_computed s.Anneal.st_cached
    else
      Format.printf "place: %d x %s, area %d -> %d@." blocks target
        r.Anneal.r_initial_cost r.Anneal.r_cost;
    if stats then print_stats hr.Hcompact.hr_cell;
    write_layout out hr.Hcompact.hr_cell

let place_cmd =
  Cmd.v
    (Cmd.info "place"
       ~doc:
         "Search-based macro placement: arrange N copies of a block on the \
          interface grid by simulated annealing, scored by hierarchically \
          compacted area.  The target is a CIF file or a builtin generator \
          (pla, ram, multiplier, decoder).")
    Term.(
      const place
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE|BUILTIN"
              ~doc:"CIF layout, or builtin: pla, ram, multiplier, decoder.")
      $ Arg.(
          value & opt int 4
          & info [ "blocks" ] ~docv:"N" ~doc:"Copies of the block to arrange.")
      $ out_arg "place.cif" $ stats_flag $ seed_arg $ iters_arg $ chains_arg
      $ strategy_arg $ search_cache_arg
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:"Emit the search summary as JSON on stdout.")
      $ domains_term $ obs_term)

(* ---- erc ----------------------------------------------------------- *)

(* Static electrical check of a layout, with the same target handling
   as drc.  --cache persists per-prototype verdicts keyed by subtree
   hash + config digest and replays them: a warm run re-adjudicates
   nothing, and an edited design still harvests the unchanged
   prototypes of its previous entry through the stem pointer. *)
let erc target from_db cache json self_check vdd gnd max_fanout strict domains
    obs =
  with_obs obs @@ fun () ->
  let cfg =
    { Erc.default_config with
      Erc.vdd_names =
        (match vdd with [] -> Erc.default_config.Erc.vdd_names | v -> v);
      gnd_names =
        (match gnd with [] -> Erc.default_config.Erc.gnd_names | g -> g);
      max_fanout;
      strict
    }
  in
  let cfg_digest = Erc.config_digest cfg Rsg_compact.Rules.default in
  let cell, design_id, name =
    match (target, from_db) with
    | Some t, None ->
      let id = if Sys.file_exists t then read_file t else "builtin:" ^ t in
      (drc_target t, id, t)
    | None, Some db -> ((load_db db).Codec.e_cell, read_file db, db)
    | Some _, Some _ ->
      Format.eprintf "erc: give either a target or --from-db, not both@.";
      exit 1
    | None, None ->
      Format.eprintf "erc: need a target or --from-db@.";
      exit 1
  in
  if self_check then
    match Erc.self_check_cell ~cfg ?domains cell with
    | Ok (b, d) ->
      Format.printf
        "self-check ok: probe strip (%d,%d)-(%d,%d) yields exactly %s: %s@."
        b.Box.xmin b.Box.ymin b.Box.xmax b.Box.ymax d.Rsg_lint.Diag.code
        d.Rsg_lint.Diag.message
    | Error msg ->
      Format.eprintf "self-check failed: %s@." msg;
      exit 1
  else begin
    let r =
      match cache with
      | None -> Erc.check_cell ~cfg ?domains cell
      | Some dir ->
        let st = Store.open_ dir in
        let stem = "erc:" ^ name in
        let key =
          Store.key
            ~deck:("erc\x00" ^ Digest.to_hex cfg_digest)
            ~scale:"1" ~design:design_id ~params:"" ()
        in
        let protos = Flatten.prototypes cell in
        let cached_of table =
          let h = proto_index table in
          fun hex ->
            Option.bind (Hashtbl.find_opt h hex) (fun (p : Codec.proto) ->
                List.assoc_opt cfg_digest p.Codec.p_ercs)
        in
        (match Store.find st key with
        | Store.Hit e ->
          Format.eprintf "cache: hit %s@." (Store.short key);
          Erc.check_protos ~cfg ?domains
            ~cached:(cached_of e.Codec.e_protos)
            protos
        | other ->
          (match other with
          | Store.Corrupt err ->
            Format.eprintf "cache: corrupt entry (%a), rechecking@."
              Codec.pp_error err
          | _ -> Format.eprintf "cache: miss %s@." (Store.short key));
          let cached =
            match Store.harvest st ~stem with
            | Some (k, table) when Array.length table > 0 ->
              Format.eprintf "cache: harvesting %s (%d prototypes)@."
                (Store.short k) (Array.length table);
              cached_of table
            | _ -> fun _ -> None
          in
          let r = Erc.check_protos ~cfg ?domains ~cached protos in
          let by_hex =
            List.map
              (fun (l : Erc.level) -> (l.Erc.l_hash, l.Erc.l_verdict))
              r.Erc.r_levels
          in
          let ercs hex =
            match List.assoc_opt hex by_hex with
            | Some v -> [ (cfg_digest, v) ]
            | None -> []
          in
          let table = Codec.proto_table protos ~ercs in
          Store.save st key ~stem ~label:("erc " ^ name) ~protos:table cell;
          Format.eprintf "cache: saved %s (%d prototypes)@." (Store.short key)
            (Array.length table);
          r)
    in
    if json then print_endline (Erc.report_to_json r)
    else Format.printf "%a" Erc.pp_report r;
    if not (Erc.clean r) then exit 1
  end

let erc_cmd =
  Cmd.v
    (Cmd.info "erc"
       ~doc:
         "Electrical rule check a layout: supply shorts, floating gates, \
          undriven nets, dangling devices, fanout limits, supply-rail \
          reachability — over the split-diffusion extracted netlist.  The \
          target is a CIF file or a builtin generator (pla, ram, \
          multiplier, decoder).  Exits 1 on ERC errors (warnings pass; see \
          $(b,--strict)).")
    Term.(
      const erc
      $ Arg.(
          value
          & pos 0 (some string) None
          & info [] ~docv:"FILE|BUILTIN"
              ~doc:"CIF layout, or builtin: pla, ram, multiplier, decoder.")
      $ from_db_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache" ] ~docv:"DIR"
              ~doc:
                "Persist per-prototype verdicts keyed by subtree hash + \
                 config digest; a warm run replays every unchanged \
                 prototype's verdict without re-extracting it.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
      $ Arg.(
          value & flag
          & info [ "self-check" ]
              ~doc:
                "Mutation self-check: inject one floating-gate transistor \
                 (a poly strip crossing a diffusion, clear of everything \
                 else) and verify the checker reports exactly that defect.")
      $ Arg.(
          value & opt_all string []
          & info [ "vdd" ] ~docv:"NAME"
              ~doc:
                "Terminal name treated as a power rail (repeatable; default \
                 vdd, vcc, vdd!, pwr).")
      $ Arg.(
          value & opt_all string []
          & info [ "gnd" ] ~docv:"NAME"
              ~doc:
                "Terminal name treated as a ground rail (repeatable; \
                 default gnd, vss, gnd!, ground).")
      $ Arg.(
          value & opt int Erc.default_config.Erc.max_fanout
          & info [ "max-fanout" ] ~docv:"N"
              ~doc:"Gates one net may drive before E304 fires.")
      $ Arg.(
          value & flag
          & info [ "strict" ]
              ~doc:"Escalate E301-E305 from warnings to errors.")
      $ domains_term $ obs_term)

(* ---- lint ---------------------------------------------------------- *)

(* The target is a design file or a builtin design (mult, pla), so the
   analyzer can be exercised without a design file at hand.  A
   parameter file makes the host environment fully known (unresolved
   names become errors); without one they stay warnings, since the
   name may arrive from a parameter file at generate time. *)
let lint target params_path sample_path assumes hashes json_out obs =
  with_obs obs @@ fun () ->
  let source_text =
    match target with
    | "mult" -> Rsg_mult.Design_file.text
    | "pla" -> Rsg_pla.Pla_design_file.text
    | path when Sys.file_exists path -> read_file path
    | other ->
      Format.eprintf "%s is neither a file nor a builtin (mult, pla)@." other;
      exit 1
  in
  if hashes then begin
    (* content digests of every procedure (calls embed the callee's
       digest) — diff two runs to see which celltypes an edit dirties *)
    (match Rsg_lang.Parser.parse_program source_text with
    | exception Rsg_lang.Parser.Syntax_error msg ->
      Format.eprintf "syntax error: %s@." msg;
      exit 1
    | program ->
      let t = Rsg_lang.Subtree.of_program program in
      if json_out then begin
        let line (name, d) =
          Printf.sprintf "  {\"proc\": \"%s\", \"hash\": \"%s\"}"
            (json_escape name) d
        in
        Printf.printf "[\n%s\n]\n"
          (String.concat ",\n" (List.map line (Rsg_lang.Subtree.digests t)))
      end
      else
        List.iter
          (fun (name, d) -> Format.printf "%s  %s@." d name)
          (Rsg_lang.Subtree.digests t));
    exit 0
  end;
  let report =
    match target with
    | "mult" ->
      Rsg_lint.Design_lint.check_string ~file:"mult.def(builtin)"
        (mult_lint_config ~size:8 ())
        Rsg_mult.Design_file.text
    | "pla" ->
      Rsg_lint.Design_lint.check_string ~file:"pla.def(builtin)"
        (pla_lint_config ~ninputs:3 ~noutputs:2 ~nterms:4 ())
        Rsg_pla.Pla_design_file.text
    | path when Sys.file_exists path ->
      let cells =
        Option.map
          (fun p -> Db.names (sample_of_cif p).Sample.db)
          sample_path
      in
      let cfg =
        match params_path with
        | Some p ->
          Rsg_lint.Design_lint.config_of_params ?cells
            (Rsg_lang.Param.parse (read_file p))
        | None ->
          { Rsg_lint.Design_lint.default_config with
            Rsg_lint.Design_lint.cells = Option.value cells ~default:[]
          }
      in
      let cfg =
        { cfg with
          Rsg_lint.Design_lint.globals =
            assumes @ cfg.Rsg_lint.Design_lint.globals
        }
      in
      Rsg_lint.Design_lint.check_string ~file:path cfg (read_file path)
    | other ->
      Format.eprintf "%s is neither a file nor a builtin (mult, pla)@." other;
      exit 1
  in
  if json_out then print_endline (Rsg_lint.Diag.report_to_json report)
  else Format.printf "%a" Rsg_lint.Diag.pp_report report;
  if not (Rsg_lint.Diag.clean report) then exit 1

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a design file without running it: unbound \
          variables under the three-tier scoping, unused locals and macros, \
          call arity, scalar-vs-array misuse, subcell bindings.  The target \
          is a design file or a builtin design (mult, pla).  Exits 1 on \
          lint errors; warnings do not fail the run.")
    Term.(
      const lint
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE|BUILTIN"
              ~doc:"Design file, or builtin: mult, pla.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "p"; "params" ] ~docv:"FILE"
              ~doc:
                "Parameter file; when given, the host environment is \
                 considered fully known and unresolved names are errors.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "s"; "sample" ] ~docv:"FILE"
              ~doc:"Sample layout (CIF); its cell names become resolvable.")
      $ Arg.(
          value & opt_all string []
          & info [ "assume" ] ~docv:"NAME"
              ~doc:
                "Treat $(docv) as a host-installed global (repeatable), \
                 e.g. the PLA's lits/outs encoding tables.")
      $ Arg.(
          value & flag
          & info [ "hashes" ]
              ~doc:
                "Instead of linting, print each procedure's transitive \
                 content digest (calls embed the callee's digest); diff \
                 two runs to see which procedures an edit dirties.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
      $ obs_term)

(* ---- batch --------------------------------------------------------- *)

(* The manifest grammar (NAME KIND [key=value ...], '#' comments) and
   the per-kind generators live in {!Rsg_serve.Jobspec}, shared with
   the serve daemon so both agree byte-for-byte on specs and cache
   keys. *)

let outcome_name = function
  | Batch.Hit -> "hit"
  | Batch.Generated -> "generated"
  | Batch.Regenerated _ -> "regenerated"
  | Batch.Failed _ -> "failed"

let batch manifest cache out_dir domains json obs =
  with_obs obs @@ fun () ->
  let jobs =
    match Rsg_serve.Jobspec.parse_manifest (read_file manifest) with
    | Ok jobs -> jobs
    | Error msg ->
      Format.eprintf "%s: %s@." manifest msg;
      exit 1
  in
  let store = Option.map Store.open_ cache in
  let t0 = Unix.gettimeofday () in
  let results = Batch.run ?domains ?store jobs in
  let wall = Unix.gettimeofday () -. t0 in
  (* outputs and summaries follow manifest order: bit-identical for
     any domain count *)
  (match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    List.iter
      (fun r ->
        match r.Batch.r_cell with
        | Some cell ->
          Cif.write_file
            (Filename.concat dir (r.Batch.r_job.Batch.j_name ^ ".cif"))
            cell
        | None -> ())
      results);
  let count p = List.length (List.filter p results) in
  let hits = count (fun r -> r.Batch.r_outcome = Batch.Hit) in
  let failed = count (fun r -> match r.Batch.r_outcome with Batch.Failed _ -> true | _ -> false) in
  if json then begin
    (* no timings here: the JSON summary is byte-stable across runs
       and domain counts *)
    let job_json r =
      Printf.sprintf
        "    {\"name\": \"%s\", \"kind\": \"%s\", \"outcome\": \"%s\", \
         \"boxes\": %d, \"key\": \"%s\"}"
        (json_escape r.Batch.r_job.Batch.j_name)
        (json_escape r.Batch.r_job.Batch.j_kind)
        (outcome_name r.Batch.r_outcome)
        r.Batch.r_boxes
        (Store.key_hex r.Batch.r_job.Batch.j_key)
    in
    Printf.printf
      "{\n  \"jobs\": [\n%s\n  ],\n  \"total\": %d,\n  \"hits\": %d,\n  \
       \"failed\": %d\n}\n"
      (String.concat ",\n" (List.map job_json results))
      (List.length results) hits failed
  end
  else begin
    List.iter
      (fun r ->
        Format.printf "%-16s %-10s %-11s %8.3fs %8d boxes%s@."
          r.Batch.r_job.Batch.j_name r.Batch.r_job.Batch.j_kind
          (outcome_name r.Batch.r_outcome)
          r.Batch.r_seconds r.Batch.r_boxes
          (match r.Batch.r_outcome with
          | Batch.Failed msg -> ": " ^ msg
          | Batch.Regenerated err ->
            Format.asprintf " (was corrupt: %a)" Codec.pp_error err
          | _ -> "");
        ())
      results;
    Format.printf "%d jobs, %d hits, %d failed in %.3fs@."
      (List.length results) hits failed wall
  end;
  if failed > 0 then exit 1

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a manifest of generation jobs (one NAME KIND key=value... per \
          line; kinds: multiplier, pla, rom, decoder, ram) across the \
          domain pool, sharing a layout cache.  Output files and summaries \
          are in manifest order — bit-identical for any domain count.")
    Term.(
      const batch
      $ Arg.(
          required
          & pos 0 (some file) None
          & info [] ~docv:"MANIFEST" ~doc:"Job manifest file.")
      $ cache_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out-dir" ] ~docv:"DIR"
              ~doc:"Write each job's layout to $(docv)/NAME.cif.")
      $ domains_term
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")
      $ obs_term)

(* ---- cache --------------------------------------------------------- *)

let cache_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Store directory.")

let cache_stats dir json =
  let s = Store.stats (Store.open_ dir) in
  if json then begin
    let entry e =
      Printf.sprintf
        "    {\"key\": \"%s\", \"label\": \"%s\", \"bytes\": %d, \"protos\": \
         %d, \"reused\": %d}"
        (json_escape e.Store.es_key)
        (json_escape e.Store.es_label)
        e.Store.es_bytes e.Store.es_protos e.Store.es_reused
    in
    let section (x : Codec.section) =
      Printf.sprintf "    {\"name\": \"%s\", \"bytes\": %d, \"entries\": %d}"
        (json_escape x.Codec.s_name)
        x.Codec.s_bytes x.Codec.s_entries
    in
    Printf.printf
      "{\n  \"entries\": %d,\n  \"bytes\": %d,\n  \"list\": [\n%s\n  ],\n  \
       \"sections\": [\n%s\n  ]\n}\n"
      s.Store.st_entries s.Store.st_bytes
      (String.concat ",\n" (List.map entry s.Store.st_list))
      (String.concat ",\n" (List.map section s.Store.st_sections))
  end
  else begin
    List.iter
      (fun e ->
        Format.printf "%s  %8d  %3d protos (%3d reused)  %s@."
          (String.sub e.Store.es_key 0 8)
          e.Store.es_bytes e.Store.es_protos e.Store.es_reused
          e.Store.es_label)
      s.Store.st_list;
    List.iter
      (fun (x : Codec.section) ->
        Format.printf "section %-18s %8d bytes  %6d entries@." x.Codec.s_name
          x.Codec.s_bytes x.Codec.s_entries)
      s.Store.st_sections;
    Format.printf "%d entries, %d bytes@." s.Store.st_entries s.Store.st_bytes
  end

let cache_stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"List cache entries (sorted by key) and totals")
    Term.(
      const cache_stats $ cache_dir_arg
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the stats as JSON."))

let cache_clear_cmd =
  let run dir =
    Format.printf "removed %d entries@." (Store.clear (Store.open_ dir))
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Delete every cache entry")
    Term.(const run $ cache_dir_arg)

let cache_gc_cmd =
  let run dir max_age max_bytes =
    let removed = Store.gc ?max_age ?max_bytes (Store.open_ dir) in
    Format.printf "removed %d entries@." removed
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Delete entries by age, then oldest-first by size")
    Term.(
      const run $ cache_dir_arg
      $ Arg.(
          value
          & opt (some float) None
          & info [ "max-age" ] ~docv:"SECONDS"
              ~doc:"Delete entries older than $(docv).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-bytes" ] ~docv:"N"
              ~doc:"Delete oldest entries until at most $(docv) bytes remain."))

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect and manage a layout cache directory")
    [ cache_stats_cmd; cache_clear_cmd; cache_gc_cmd ]

(* ---- serve / client ------------------------------------------------ *)

module Serve = Rsg_serve.Serve
module Sclient = Rsg_serve.Client
module Sjson = Rsg_serve.Json

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve socket workers queue mem_mb cache max_request_kb =
  let workers =
    match workers with Some w -> w | None -> Rsg_par.Par.default_domains ()
  in
  let cfg =
    { (Serve.default_config ~socket_path:socket) with
      Serve.workers;
      queue_depth = queue;
      mem_budget = mem_mb * 1024 * 1024;
      store_dir = cache;
      max_request = max_request_kb * 1024;
      handle_signals = true
    }
  in
  Serve.run
    ~on_ready:(fun () ->
      Format.printf "serving on %s (%d workers, queue %d, %d MiB memory%s)@."
        socket workers queue mem_mb
        (match cache with Some d -> ", store " ^ d | None -> "");
      Format.print_flush ())
    cfg;
  Format.printf "drained@."

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident generation service: accept generate/drc/erc/\
          extract/lint/batch jobs as newline-delimited JSON over a Unix-domain \
          socket, multiplexed onto a bounded worker pool with per-job \
          deadlines, coalescing of identical in-flight generations, and a \
          hot in-memory cache over the layout store.  SIGTERM drains \
          gracefully: admitted jobs complete, new work is refused.")
    Term.(
      const serve $ socket_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "workers" ] ~docv:"N"
              ~doc:
                "Worker domains executing jobs (default: RSG_DOMAINS or the \
                 machine's recommended domain count).")
      $ Arg.(
          value & opt int 16
          & info [ "queue" ] ~docv:"N"
              ~doc:
                "Admission queue depth: jobs queued beyond the running ones \
                 before requests are answered with queue_full.")
      $ Arg.(
          value & opt int 64
          & info [ "mem-budget" ] ~docv:"MIB"
              ~doc:"In-memory result cache budget, mebibytes.")
      $ cache_arg
      $ Arg.(
          value & opt int 1024
          & info [ "max-request" ] ~docv:"KIB"
              ~doc:"Byte cap on one request line, kibibytes."))

(* one-shot scripting client: build the request(s), pipeline them,
   print each response as a JSON line, exit 0 iff every response is ok *)
let client socket op arg drc cif out deadline attempts =
  let fields ?spec extra =
    ("id", Sjson.String "c1")
    :: ("op", Sjson.String op)
    :: ((match spec with Some s -> [ ("spec", Sjson.String s) ] | None -> [])
       @ extra
       @
       match deadline with
       | Some ms -> [ ("deadline_ms", Sjson.Int ms) ]
       | None -> [])
  in
  let usage msg =
    Format.eprintf "%s@." msg;
    exit 2
  in
  let reqs =
    match (op, arg) with
    | ("stats" | "health" | "shutdown"), None -> [ `Json (Sjson.Obj (fields [])) ]
    | ("stats" | "health" | "shutdown"), Some _ ->
      usage (op ^ " takes no argument")
    | "generate", Some spec ->
      let flags =
        (if drc then [ ("drc", Sjson.Bool true) ] else [])
        @ (if cif then [ ("cif", Sjson.Bool true) ] else [])
        @ match out with Some p -> [ ("out", Sjson.String p) ] | None -> []
      in
      [ `Json (Sjson.Obj (fields ~spec flags)) ]
    | ("drc" | "erc" | "extract" | "lint"), Some spec ->
      [ `Json (Sjson.Obj (fields ~spec [])) ]
    | "batch", Some path ->
      [ `Json (Sjson.Obj (fields ~spec:(read_file path) [])) ]
    | "sleep", Some ms -> (
      match int_of_string_opt ms with
      | Some ms -> [ `Json (Sjson.Obj (fields [ ("ms", Sjson.Int ms) ])) ]
      | None -> usage "sleep needs milliseconds")
    | "raw", None ->
      (* pipeline stdin verbatim, one request per line — the harness
         entry point for malformed-frame and coalescing experiments *)
      let rec lines acc =
        match In_channel.input_line stdin with
        | Some l -> lines (if String.trim l = "" then acc else `Raw l :: acc)
        | None -> List.rev acc
      in
      lines []
    | "raw", Some _ -> usage "raw reads requests from stdin"
    | _, None -> usage (op ^ " needs an argument")
    | other, _ ->
      usage
        (other
       ^ ": unknown op (generate, drc, erc, extract, lint, batch, sleep, \
          stats, health, shutdown, raw)")
  in
  if reqs = [] then usage "no requests";
  match Sclient.connect ~attempts socket with
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 1
  | Ok c ->
    let result =
      Fun.protect
        ~finally:(fun () -> Sclient.close c)
        (fun () ->
          let rec send_all = function
            | [] -> Ok ()
            | `Json v :: rest ->
              Result.bind (Sclient.send c v) (fun () -> send_all rest)
            | `Raw l :: rest ->
              Result.bind (Sclient.send_line c l) (fun () -> send_all rest)
          in
          Result.bind (send_all reqs) (fun () ->
              let rec recv_n acc n =
                if n = 0 then Ok (List.rev acc)
                else
                  match Sclient.recv c with
                  | Ok v -> recv_n (v :: acc) (n - 1)
                  | Error _ when acc <> [] ->
                    (* daemon closed after an error response (e.g.
                       too_large): report what we got *)
                    Ok (List.rev acc)
                  | Error _ as e -> e
              in
              recv_n [] (List.length reqs)))
    in
    (match result with
    | Error msg ->
      Format.eprintf "%s@." msg;
      exit 1
    | Ok resps ->
      List.iter (fun r -> print_endline (Sjson.to_string r)) resps;
      if List.for_all Sclient.response_ok resps then () else exit 1)

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,rsg serve) daemon.  OP is generate, drc, \
          erc, extract, lint, batch, sleep, stats, health, shutdown, or raw \
          (pipeline JSON request lines from stdin).  Responses are printed \
          one JSON line each; exits 0 iff every response is ok.")
    Term.(
      const client $ socket_arg
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"OP" ~doc:"Operation.")
      $ Arg.(
          value
          & pos 1 (some string) None
          & info [] ~docv:"ARG"
              ~doc:
                "Op argument: a manifest line (generate), a builtin or CIF \
                 path (drc, erc, extract), a builtin or design file (lint), \
                 a manifest file (batch), milliseconds (sleep).")
      $ Arg.(
          value & flag
          & info [ "drc" ] ~doc:"generate: also design-rule check the result.")
      $ Arg.(
          value & flag
          & info [ "cif" ] ~doc:"generate: include the CIF text in the response.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~docv:"FILE"
              ~doc:"generate: write the layout to $(docv) (daemon-side path).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "deadline" ] ~docv:"MS"
              ~doc:
                "Deadline: the job must start within $(docv) milliseconds or \
                 is answered deadline_expired.")
      $ Arg.(
          value & opt int 1
          & info [ "connect-retries" ] ~docv:"N"
              ~doc:
                "Retry the connect up to $(docv) times (50 ms apart) — for \
                 scripts that start the daemon and connect immediately."))

(* ---- doctor -------------------------------------------------------- *)

(* A guided demonstration of the diagnosable, transactional expansion
   engine: a deliberately broken connectivity graph (one missing
   interface, one inconsistent cycle) is diagnosed in collect mode,
   the table is repaired, and the very same graph then expands. *)
let doctor () =
  let leaf name =
    let c = Cell.create name in
    Cell.add_box c Layer.Metal (Box.of_size ~origin:Vec.zero ~width:8 ~height:8);
    c
  in
  let u = leaf "u" and v = leaf "v" in
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  (* deliberately wrong: the closing edge of the triangle below needs
     (20, 0), but index 2 was "declared" as a vertical step *)
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 0 12) Orient.north);
  let a = Graph.mk_instance u
  and b = Graph.mk_instance u
  and c = Graph.mk_instance u
  and d = Graph.mk_instance v in
  Graph.connect a b 1;
  Graph.connect b c 1;
  Graph.connect a c 2;
  (* inconsistent cycle *)
  Graph.connect c d 7;
  (* no I(u, v, 7) anywhere: missing interface *)
  Format.printf "diagnosing a deliberately broken graph (collect mode):@.@.";
  let r = Expand.run ~mode:`Collect tbl a in
  Format.printf "%a@." Expand.pp_report r;
  let untouched =
    List.for_all
      (fun (n : Graph.node) -> n.Graph.placement = None)
      (Graph.reachable a)
  in
  Format.printf "@.graph left untouched by the failed expansion: %b@."
    untouched;
  Format.printf "@.repairing: replace I(u, u, 2) with (20, 0) north; declare \
                 I(u, v, 7)@.";
  Interface_table.replace tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 20 0) Orient.north);
  Interface_table.declare tbl ~from:"u" ~into:"v" ~index:7
    (Interface.make (Vec.make 10 0) Orient.north);
  let r' = Expand.run ~mode:`Collect tbl a in
  Format.printf "@.%a@." Expand.pp_report r';
  match r'.Expand.r_defects with
  | [] ->
    let cell = Expand.mk_cell tbl "repaired" a in
    Format.printf "@.expanded %d instances into cell %s@."
      (List.length (Cell.instances cell))
      cell.Cell.cname
  | _ ->
    Format.eprintf "repair failed?!@.";
    exit 1

let doctor_cmd =
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Demonstrate expansion diagnostics: collect every defect of a \
          broken connectivity graph, repair the interface table, re-expand")
    Term.(const doctor $ const ())

let () =
  let info = Cmd.info "rsg" ~version:"1.0" ~doc:"Regular Structure Generator" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; multiplier_cmd; pla_cmd; rom_cmd; decoder_cmd;
            place_cmd;
            sim_cmd; stats_cmd; compact_cmd; masks_cmd; drc_cmd; erc_cmd;
            lint_cmd; batch_cmd; cache_cmd; serve_cmd; client_cmd;
            doctor_cmd ]))

(* The rsg command line: layout generation from design + parameter +
   sample files (the Figure 1.1 flow), plus built-in generators and
   layout utilities.

     rsg generate -d mult.def -p mult.par -s sample.cif -o out.cif
     rsg multiplier --size 8 -o mult.cif
     rsg pla -t table.txt -o pla.cif
     rsg decoder -n 4 -o dec.cif
     rsg stats layout.cif
     rsg compact layout.cif -o smaller.cif --slack
     rsg drc layout.cif               # design-rule check (or: pla|ram|...)
     rsg lint design.def -p file.par  # static analysis (or: mult|pla)
     rsg doctor                       # expansion diagnostics demo

   Generator commands accept --obs / --obs-json to record per-phase
   timers and counters (lib/obs) and dump them to stderr on exit,
   --drc to gate the run on a clean design-rule check of the result,
   and (design-file-driven generators) --lint to gate on a clean
   static analysis of the design file before anything runs.
*)

open Cmdliner
open Rsg_geom
open Rsg_layout
open Rsg_core
module Obs = Rsg_obs.Obs

(* ---- observability flags ------------------------------------------- *)

let obs_term =
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Record per-phase wall-clock timers and counters (graph \
             expansion, constraint generation, Bellman-Ford, ...) and dump \
             a human-readable report to stderr on exit.")
  in
  let obs_json =
    Arg.(
      value & flag
      & info [ "obs-json" ] ~doc:"Like $(b,--obs) but dump JSON to stderr.")
  in
  Term.(const (fun a b -> (a, b)) $ obs $ obs_json)

let with_obs (text, json) f =
  if text || json then Obs.enable ();
  Fun.protect f ~finally:(fun () ->
      if json then prerr_endline (Obs.to_json ())
      else if text then Obs.dump ())

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A sample CIF holds leaf cells plus labelled assembly cells; every
   symbol that contains both instances and labels is extracted. *)
let sample_of_cif path =
  let r = Cif.read_file path in
  fst (Sample.of_db r.Cif.db)

let write_layout out cell =
  (* format by extension: .def gets the native text format, anything
     else CIF *)
  if Filename.check_suffix out ".def" then Def.write_file out cell
  else Cif.write_file out cell;
  Format.printf "wrote %s@." out

let print_stats cell =
  Format.printf "%a" Report.pp (Report.of_cell cell);
  let s = Flatten.stats cell in
  Format.printf "  flattened census:@.";
  List.iter (fun (n, k) -> Format.printf "    %-14s %6d@." n k) s.Flatten.by_cell

(* ---- design-rule gating -------------------------------------------- *)

let drc_flag =
  Arg.(
    value & flag
    & info [ "drc" ]
        ~doc:
          "Design-rule check the generated layout against the default lambda \
           deck; fail (exit 1) on violations.")

let domains_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for the parallel phases (DRC region merging and rule \
           checks, extraction scans).  Defaults to the RSG_DOMAINS \
           environment variable, else the machine's recommended domain \
           count.  Results are identical for every value; 1 runs fully \
           sequentially.")

(* gate a generator's output: clean passes silently with a one-line
   note, violations dump the report and abort before anything is
   written.  The input geometry comes out of the prototype cache, so
   the hierarchy is flattened once per distinct celltype rather than
   once per instance. *)
let drc_gate ?domains enabled cell =
  if enabled then begin
    let protos = Flatten.prototypes cell in
    let r = Rsg_drc.Drc.check_flat ?domains (Flatten.protos_flat protos) in
    if Rsg_drc.Drc.clean r then
      Format.printf "drc: clean (%d boxes, %d regions, deck %s)@."
        r.Rsg_drc.Drc.r_boxes r.Rsg_drc.Drc.r_regions r.Rsg_drc.Drc.r_deck
    else begin
      Format.eprintf "%a" Rsg_drc.Drc.pp_report r;
      exit 1
    end
  end

(* ---- static lint gating -------------------------------------------- *)

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Statically analyze the design file (scoping, arity, array shape) \
           before generating; fail (exit 1) on lint errors.")

(* gate a design-file run on a clean static analysis, mirroring
   drc_gate: clean passes with a one-line note, errors dump the
   report and abort before anything is generated *)
let lint_gate enabled ~source cfg text =
  if enabled then begin
    let r = Rsg_lint.Design_lint.check_string ~file:source cfg text in
    if Rsg_lint.Diag.clean r then
      Format.printf "lint: clean (%d forms, %d warnings)@."
        r.Rsg_lint.Diag.r_checked
        (List.length (Rsg_lint.Diag.warnings r))
    else begin
      Format.eprintf "%a" Rsg_lint.Diag.pp_report r;
      exit 1
    end
  end

let mult_lint_config ~size () =
  let sample, _ = Rsg_mult.Sample_lib.build () in
  let params =
    Rsg_lang.Param.parse (Rsg_mult.Sample_lib.param_file ~xsize:size ~ysize:size)
  in
  Rsg_lint.Design_lint.config_of_params ~cells:(Db.names sample.Sample.db) params

let pla_lint_config ~ninputs ~noutputs ~nterms () =
  let sample, _ = Rsg_pla.Pla_cells.build () in
  let params =
    Rsg_lang.Param.parse
      (Rsg_pla.Pla_design_file.param_file ~ninputs ~noutputs ~nterms ~name:"pla")
  in
  let cfg =
    Rsg_lint.Design_lint.config_of_params ~cells:(Db.names sample.Sample.db)
      params
  in
  (* the encoding tables are host-installed globals (delayed binding) *)
  { cfg with
    Rsg_lint.Design_lint.globals =
      "lits" :: "outs" :: cfg.Rsg_lint.Design_lint.globals
  }

(* ---- generate ------------------------------------------------------ *)

let generate design params sample_path out stats lint drc domains obs =
  with_obs obs @@ fun () ->
  let sample = sample_of_cif sample_path in
  let param_tbl = Rsg_lang.Param.parse (read_file params) in
  lint_gate lint ~source:design
    (Rsg_lint.Design_lint.config_of_params
       ~cells:(Db.names sample.Sample.db) param_tbl)
    (read_file design);
  let st = Rsg_lang.Interp.of_sample ~file:design sample in
  Rsg_lang.Interp.load_params st param_tbl;
  (try ignore (Rsg_lang.Interp.run_string st (read_file design)) with
  | Rsg_lang.Interp.Runtime_error msg ->
    Format.eprintf "runtime error: %s@." msg;
    exit 1
  | Rsg_lang.Parser.Syntax_error msg ->
    Format.eprintf "syntax error: %s@." msg;
    exit 1);
  match Rsg_lang.Interp.last_created st with
  | None ->
    Format.eprintf "design file created no cell@.";
    exit 1
  | Some cell ->
    if stats then print_stats cell;
    drc_gate ?domains drc cell;
    write_layout out cell

let design_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "design" ] ~docv:"FILE" ~doc:"Design file (procedural).")

let params_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "p"; "params" ] ~docv:"FILE" ~doc:"Parameter file.")

let sample_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "sample" ] ~docv:"FILE"
        ~doc:"Sample layout (CIF with labelled assemblies).")

let out_arg default =
  Arg.(value & opt string default & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CIF.")

let stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print layout statistics.")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a layout from design/parameter/sample files")
    Term.(
      const generate $ design_arg $ params_arg $ sample_arg $ out_arg "out.cif"
      $ stats_flag $ lint_flag $ drc_flag $ domains_term $ obs_term)

(* ---- multiplier ---------------------------------------------------- *)

let multiplier size out stats lint drc domains obs =
  with_obs obs @@ fun () ->
  lint_gate lint ~source:"mult.def(builtin)" (mult_lint_config ~size ())
    Rsg_mult.Design_file.text;
  let g = Rsg_mult.Layout_gen.generate ~xsize:size ~ysize:size () in
  if stats then print_stats g.Rsg_mult.Layout_gen.whole;
  drc_gate ?domains drc g.Rsg_mult.Layout_gen.whole;
  write_layout out g.Rsg_mult.Layout_gen.whole

let size_arg =
  Arg.(value & opt int 8 & info [ "size" ] ~docv:"N" ~doc:"Multiplier bits.")

let multiplier_cmd =
  Cmd.v
    (Cmd.info "multiplier" ~doc:"Generate a pipelined array multiplier")
    Term.(
      const multiplier $ size_arg $ out_arg "mult.cif" $ stats_flag $ lint_flag
      $ drc_flag $ domains_term $ obs_term)

(* ---- pla ----------------------------------------------------------- *)

let pla table out stats fold lint drc domains obs =
  with_obs obs @@ fun () ->
  let rows =
    read_file table |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           match String.split_on_char ' ' (String.trim line) with
           | [ i; o ] when i <> "" -> Some (i, o)
           | _ -> None)
  in
  match Rsg_pla.Truth_table.of_strings rows with
  | exception Rsg_pla.Truth_table.Malformed msg ->
    Format.eprintf "bad truth table: %s@." msg;
    exit 1
  | tt ->
    lint_gate lint ~source:"pla.def(builtin)"
      (pla_lint_config ~ninputs:tt.Rsg_pla.Truth_table.n_inputs
         ~noutputs:tt.Rsg_pla.Truth_table.n_outputs
         ~nterms:(List.length tt.Rsg_pla.Truth_table.terms)
         ())
      Rsg_pla.Pla_design_file.text;
    let cell =
      if fold then begin
        let g = Rsg_pla.Folding.generate tt in
        if not (Rsg_pla.Folding.verify g) then begin
          Format.eprintf "internal error: folded extraction mismatch@.";
          exit 1
        end;
        Format.printf "folded %d inputs into %d slots@."
          tt.Rsg_pla.Truth_table.n_inputs
          (Rsg_pla.Folding.n_slots g.Rsg_pla.Folding.fold);
        g.Rsg_pla.Folding.cell
      end
      else begin
        let g = Rsg_pla.Gen.generate tt in
        if not (Rsg_pla.Gen.verify g) then begin
          Format.eprintf "internal error: extraction mismatch@.";
          exit 1
        end;
        g.Rsg_pla.Gen.cell
      end
    in
    if stats then print_stats cell;
    drc_gate ?domains drc cell;
    write_layout out cell

let table_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "t"; "table" ] ~docv:"FILE"
        ~doc:"Truth table: one 'inputs outputs' row per line (1/0/-).")

let fold_flag =
  Arg.(value & flag & info [ "fold" ] ~doc:"Fold disjoint input columns.")

let pla_cmd =
  Cmd.v
    (Cmd.info "pla" ~doc:"Generate a PLA from a truth table")
    Term.(
      const pla $ table_arg $ out_arg "pla.cif" $ stats_flag $ fold_flag
      $ lint_flag $ drc_flag $ domains_term $ obs_term)

(* ---- rom ----------------------------------------------------------- *)

let rom data_path word_bits out stats drc domains obs =
  with_obs obs @@ fun () ->
  let words =
    read_file data_path |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let s = String.trim line in
           if s = "" then None
           else
             match int_of_string_opt s with
             | Some v -> Some v
             | None ->
               Format.eprintf "bad word %S@." s;
               exit 1)
    |> Array.of_list
  in
  match Rsg_pla.Rom.generate ~word_bits words with
  | exception Invalid_argument msg ->
    Format.eprintf "%s@." msg;
    exit 1
  | r ->
    if not (Rsg_pla.Rom.verify r) then begin
      Format.eprintf "internal error: ROM readback mismatch@.";
      exit 1
    end;
    if stats then print_stats r.Rsg_pla.Rom.pla.Rsg_pla.Gen.cell;
    drc_gate ?domains drc r.Rsg_pla.Rom.pla.Rsg_pla.Gen.cell;
    write_layout out r.Rsg_pla.Rom.pla.Rsg_pla.Gen.cell

let rom_cmd =
  Cmd.v
    (Cmd.info "rom" ~doc:"Generate a ROM from a list of words")
    Term.(
      const rom
      $ Arg.(
          required
          & opt (some file) None
          & info [ "data" ] ~docv:"FILE"
              ~doc:"One integer word per line; power-of-two count.")
      $ Arg.(value & opt int 8 & info [ "word-bits" ] ~docv:"N" ~doc:"Word width.")
      $ out_arg "rom.cif" $ stats_flag $ drc_flag $ domains_term $ obs_term)

(* ---- decoder ------------------------------------------------------- *)

let decoder n out stats drc domains obs =
  with_obs obs @@ fun () ->
  let g = Rsg_pla.Gen.generate_decoder n in
  if stats then print_stats g.Rsg_pla.Gen.cell;
  drc_gate ?domains drc g.Rsg_pla.Gen.cell;
  write_layout out g.Rsg_pla.Gen.cell

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Decoder input bits.")

let decoder_cmd =
  Cmd.v
    (Cmd.info "decoder" ~doc:"Generate an n-to-2^n decoder")
    Term.(
      const decoder $ n_arg $ out_arg "decoder.cif" $ stats_flag $ drc_flag
      $ domains_term $ obs_term)

(* ---- sim ----------------------------------------------------------- *)

let sim size beta a b =
  let t =
    Rsg_mult.Multiplier.build
      ?beta:(if beta = 0 then None else Some beta)
      ~m:size ~n:size ()
  in
  match Rsg_mult.Multiplier.multiply t a b with
  | exception Invalid_argument msg ->
    Format.eprintf "%s@." msg;
    exit 1
  | p ->
    let s = Rsg_mult.Multiplier.stats t in
    Format.printf "%d * %d = %d@." a b p;
    Format.printf
      "(%dx%d %s multiplier: %d adder cells, %d registers, latency %d)@."
      size size
      (if beta = 0 then "combinational" else Printf.sprintf "beta=%d" beta)
      s.Rsg_mult.Multiplier.adder_cells s.Rsg_mult.Multiplier.registers
      s.Rsg_mult.Multiplier.latency_cycles;
    if p <> a * b then begin
      Format.eprintf "MISMATCH: expected %d@." (a * b);
      exit 1
    end

let sim_cmd =
  Cmd.v
    (Cmd.info "sim" ~doc:"Multiply through the cycle-accurate array model")
    Term.(
      const sim $ size_arg
      $ Arg.(
          value & opt int 0
          & info [ "beta" ] ~docv:"B"
              ~doc:"Pipelining degree (0 = combinational).")
      $ Arg.(required & pos 0 (some int) None & info [] ~docv:"A")
      $ Arg.(required & pos 1 (some int) None & info [] ~docv:"B"))

(* ---- stats --------------------------------------------------------- *)

let top_cell_of_cif path =
  let r = Cif.read_file path in
  (* the top is either the explicit top-level call or the symbol no
     other symbol instantiates *)
  match r.Cif.top with
  | Some top -> (
    match Cell.instances top with
    | [ i ] -> i.Cell.def
    | _ -> top)
  | None -> (
    let called = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (fun (i : Cell.instance) ->
            Hashtbl.replace called i.Cell.def.Cell.cname ())
          (Cell.instances c))
      (Db.cells r.Cif.db);
    match
      List.filter (fun c -> not (Hashtbl.mem called c.Cell.cname)) (Db.cells r.Cif.db)
    with
    | [ c ] -> c
    | _ -> failwith "cannot determine the top cell")

let stats_cmd =
  let run path = print_stats (top_cell_of_cif path) in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print statistics for a CIF layout")
    Term.(
      const run
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"))

(* ---- masks --------------------------------------------------------- *)

let masks path out =
  let cell = top_cell_of_cif path in
  let expanded =
    Rsg_compact.Expand_contact.expand_cell Rsg_compact.Rules.default cell
  in
  Format.printf "expanded synthetic contacts: %d boxes -> %d boxes@."
    (Flatten.stats cell).Flatten.n_boxes
    (List.length (Cell.boxes expanded));
  write_layout out expanded

let masks_cmd =
  Cmd.v
    (Cmd.info "masks"
       ~doc:"Expand synthetic contact layers to lithographic masks")
    Term.(
      const masks
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
      $ out_arg "masks.cif")

(* ---- compact ------------------------------------------------------- *)

let compact path out slack drc domains obs =
  with_obs obs @@ fun () ->
  let cell = top_cell_of_cif path in
  let compacted, r =
    Rsg_compact.Compactor.compact_cell ~distribute_slack:slack
      Rsg_compact.Rules.default cell
  in
  Format.printf "width %d -> %d (%d constraints, %d passes)@."
    r.Rsg_compact.Compactor.width_before r.Rsg_compact.Compactor.width_after
    r.Rsg_compact.Compactor.n_constraints r.Rsg_compact.Compactor.passes;
  drc_gate ?domains drc compacted;
  write_layout out compacted

let slack_flag =
  Arg.(value & flag & info [ "slack" ] ~doc:"Distribute slack after packing.")

let compact_cmd =
  Cmd.v
    (Cmd.info "compact" ~doc:"One-dimensional compaction of a CIF layout")
    Term.(
      const compact
      $ Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
      $ out_arg "compacted.cif" $ slack_flag $ drc_flag $ domains_term
      $ obs_term)

(* ---- drc ----------------------------------------------------------- *)

(* The target is either a CIF file or a builtin generator name, so the
   checker can be exercised without a layout at hand. *)
let drc_target = function
  | "pla" ->
    let tt =
      Rsg_pla.Truth_table.of_strings [ ("10-", "10"); ("0-1", "01") ]
    in
    (Rsg_pla.Gen.generate tt).Rsg_pla.Gen.cell
  | "ram" -> (Rsg_ram.Ram_gen.generate ~words:8 ~bits:4 ()).Rsg_ram.Ram_gen.cell
  | "multiplier" ->
    (Rsg_mult.Layout_gen.generate ~xsize:8 ~ysize:8 ()).Rsg_mult.Layout_gen.whole
  | "decoder" -> (Rsg_pla.Gen.generate_decoder 3).Rsg_pla.Gen.cell
  | path when Sys.file_exists path -> top_cell_of_cif path
  | other ->
    Format.eprintf
      "%s is neither a file nor a builtin (pla, ram, multiplier, decoder)@."
      other;
    exit 1

let drc target rules json max_shown self_check compacted domains obs =
  with_obs obs @@ fun () ->
  let deck =
    match rules with
    | None -> Rsg_drc.Deck.default
    | Some path -> (
      try Rsg_drc.Deck.read_file path
      with Rsg_drc.Deck.Parse_error (line, msg) ->
        Format.eprintf "%s:%d: %s@." path line msg;
        exit 1)
  in
  let cell = drc_target target in
  let cell =
    if compacted then
      fst (Rsg_compact.Compactor.compact_cell Rsg_compact.Rules.default cell)
    else cell
  in
  if self_check then
    match Rsg_drc.Drc.self_check_cell ~deck ?domains cell with
    | Ok sc -> Format.printf "%a@." Rsg_drc.Drc.pp_self_check sc
    | Error msg ->
      Format.eprintf "self-check failed: %s@." msg;
      exit 1
  else begin
    let protos = Flatten.prototypes cell in
    let r = Rsg_drc.Drc.check_flat ~deck ?domains (Flatten.protos_flat protos) in
    if json then print_endline (Rsg_drc.Drc.report_to_json r)
    else begin
      let total = List.length r.Rsg_drc.Drc.r_violations in
      let shown =
        { r with
          Rsg_drc.Drc.r_violations =
            List.filteri (fun i _ -> i < max_shown) r.Rsg_drc.Drc.r_violations
        }
      in
      Format.printf "%a" Rsg_drc.Drc.pp_report shown;
      if total > max_shown then
        Format.printf "  ... and %d more (raise --max)@." (total - max_shown)
    end;
    if not (Rsg_drc.Drc.clean r) then exit 1
  end

let drc_cmd =
  Cmd.v
    (Cmd.info "drc"
       ~doc:
         "Design-rule check a layout: merged-region minimum width, \
          facing-edge spacing, contact enclosure.  The target is a CIF file \
          or a builtin generator (pla, ram, multiplier, decoder).  Exits 1 \
          on violations.")
    Term.(
      const drc
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE|BUILTIN"
              ~doc:"CIF layout, or builtin: pla, ram, multiplier, decoder.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "rules" ] ~docv:"FILE"
              ~doc:
                "Rule deck in the DSL (width/spacing/enclosure/overlap lines); \
                 default is the builtin nmos-lambda deck.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
      $ Arg.(
          value & opt int 20
          & info [ "max" ] ~docv:"N" ~doc:"Print at most $(docv) violations.")
      $ Arg.(
          value & flag
          & info [ "self-check" ]
              ~doc:
                "Mutation self-check: narrow one box to just below its width \
                 rule and verify the checker reports exactly that defect.")
      $ Arg.(
          value & flag
          & info [ "compacted" ] ~doc:"Check the layout after x compaction.")
      $ domains_term $ obs_term)

(* ---- lint ---------------------------------------------------------- *)

(* The target is a design file or a builtin design (mult, pla), so the
   analyzer can be exercised without a design file at hand.  A
   parameter file makes the host environment fully known (unresolved
   names become errors); without one they stay warnings, since the
   name may arrive from a parameter file at generate time. *)
let lint target params_path sample_path assumes json_out obs =
  with_obs obs @@ fun () ->
  let report =
    match target with
    | "mult" ->
      Rsg_lint.Design_lint.check_string ~file:"mult.def(builtin)"
        (mult_lint_config ~size:8 ())
        Rsg_mult.Design_file.text
    | "pla" ->
      Rsg_lint.Design_lint.check_string ~file:"pla.def(builtin)"
        (pla_lint_config ~ninputs:3 ~noutputs:2 ~nterms:4 ())
        Rsg_pla.Pla_design_file.text
    | path when Sys.file_exists path ->
      let cells =
        Option.map
          (fun p -> Db.names (sample_of_cif p).Sample.db)
          sample_path
      in
      let cfg =
        match params_path with
        | Some p ->
          Rsg_lint.Design_lint.config_of_params ?cells
            (Rsg_lang.Param.parse (read_file p))
        | None ->
          { Rsg_lint.Design_lint.default_config with
            Rsg_lint.Design_lint.cells = Option.value cells ~default:[]
          }
      in
      let cfg =
        { cfg with
          Rsg_lint.Design_lint.globals =
            assumes @ cfg.Rsg_lint.Design_lint.globals
        }
      in
      Rsg_lint.Design_lint.check_string ~file:path cfg (read_file path)
    | other ->
      Format.eprintf "%s is neither a file nor a builtin (mult, pla)@." other;
      exit 1
  in
  if json_out then print_endline (Rsg_lint.Diag.report_to_json report)
  else Format.printf "%a" Rsg_lint.Diag.pp_report report;
  if not (Rsg_lint.Diag.clean report) then exit 1

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a design file without running it: unbound \
          variables under the three-tier scoping, unused locals and macros, \
          call arity, scalar-vs-array misuse, subcell bindings.  The target \
          is a design file or a builtin design (mult, pla).  Exits 1 on \
          lint errors; warnings do not fail the run.")
    Term.(
      const lint
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"FILE|BUILTIN"
              ~doc:"Design file, or builtin: mult, pla.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "p"; "params" ] ~docv:"FILE"
              ~doc:
                "Parameter file; when given, the host environment is \
                 considered fully known and unresolved names are errors.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "s"; "sample" ] ~docv:"FILE"
              ~doc:"Sample layout (CIF); its cell names become resolvable.")
      $ Arg.(
          value & opt_all string []
          & info [ "assume" ] ~docv:"NAME"
              ~doc:
                "Treat $(docv) as a host-installed global (repeatable), \
                 e.g. the PLA's lits/outs encoding tables.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
      $ obs_term)

(* ---- doctor -------------------------------------------------------- *)

(* A guided demonstration of the diagnosable, transactional expansion
   engine: a deliberately broken connectivity graph (one missing
   interface, one inconsistent cycle) is diagnosed in collect mode,
   the table is repaired, and the very same graph then expands. *)
let doctor () =
  let leaf name =
    let c = Cell.create name in
    Cell.add_box c Layer.Metal (Box.of_size ~origin:Vec.zero ~width:8 ~height:8);
    c
  in
  let u = leaf "u" and v = leaf "v" in
  let tbl = Interface_table.create () in
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:1
    (Interface.make (Vec.make 10 0) Orient.north);
  (* deliberately wrong: the closing edge of the triangle below needs
     (20, 0), but index 2 was "declared" as a vertical step *)
  Interface_table.declare tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 0 12) Orient.north);
  let a = Graph.mk_instance u
  and b = Graph.mk_instance u
  and c = Graph.mk_instance u
  and d = Graph.mk_instance v in
  Graph.connect a b 1;
  Graph.connect b c 1;
  Graph.connect a c 2;
  (* inconsistent cycle *)
  Graph.connect c d 7;
  (* no I(u, v, 7) anywhere: missing interface *)
  Format.printf "diagnosing a deliberately broken graph (collect mode):@.@.";
  let r = Expand.run ~mode:`Collect tbl a in
  Format.printf "%a@." Expand.pp_report r;
  let untouched =
    List.for_all
      (fun (n : Graph.node) -> n.Graph.placement = None)
      (Graph.reachable a)
  in
  Format.printf "@.graph left untouched by the failed expansion: %b@."
    untouched;
  Format.printf "@.repairing: replace I(u, u, 2) with (20, 0) north; declare \
                 I(u, v, 7)@.";
  Interface_table.replace tbl ~from:"u" ~into:"u" ~index:2
    (Interface.make (Vec.make 20 0) Orient.north);
  Interface_table.declare tbl ~from:"u" ~into:"v" ~index:7
    (Interface.make (Vec.make 10 0) Orient.north);
  let r' = Expand.run ~mode:`Collect tbl a in
  Format.printf "@.%a@." Expand.pp_report r';
  match r'.Expand.r_defects with
  | [] ->
    let cell = Expand.mk_cell tbl "repaired" a in
    Format.printf "@.expanded %d instances into cell %s@."
      (List.length (Cell.instances cell))
      cell.Cell.cname
  | _ ->
    Format.eprintf "repair failed?!@.";
    exit 1

let doctor_cmd =
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Demonstrate expansion diagnostics: collect every defect of a \
          broken connectivity graph, repair the interface table, re-expand")
    Term.(const doctor $ const ())

let () =
  let info = Cmd.info "rsg" ~version:"1.0" ~doc:"Regular Structure Generator" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; multiplier_cmd; pla_cmd; rom_cmd; decoder_cmd;
            sim_cmd; stats_cmd; compact_cmd; masks_cmd; drc_cmd; lint_cmd;
            doctor_cmd ]))

#!/bin/sh
# Source hygiene gate, usable anywhere dune runs (no ocamlformat
# dependency): rejects tab indentation, trailing whitespace and
# missing final newlines in tracked OCaml/dune sources.
set -eu

cd "$(dirname "$0")/.."

status=0
files=$(git ls-files '*.ml' '*.mli' 'dune-project' '*/dune' 'dune')

for f in $files; do
  if grep -n "$(printf '\t')" "$f" >/dev/null; then
    echo "error: tab character in $f:" >&2
    grep -n "$(printf '\t')" "$f" | head -3 >&2
    status=1
  fi
  if grep -n ' $' "$f" >/dev/null; then
    echo "error: trailing whitespace in $f:" >&2
    grep -n ' $' "$f" | head -3 >&2
    status=1
  fi
  if [ -s "$f" ] && [ "$(tail -c 1 "$f")" != "" ]; then
    echo "error: no final newline in $f" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "format check: OK ($(echo "$files" | wc -w | tr -d ' ') files)"
fi
exit "$status"
